(* Tests for Emts_sched.Schedule: construction, metrics, validation and
   rendering. *)

module S = Emts_sched.Schedule
module Gantt = Emts_sched.Gantt

let check_float = Alcotest.(check (float 1e-9))

let entry task start finish procs = { S.task; start; finish; procs }

(* A valid 2-task schedule on 3 processors:
   task 0 on procs {0,1} during [0,2); task 1 on {1,2} during [2,5). *)
let sample () =
  S.make ~platform_procs:3
    [| entry 0 0. 2. [| 0; 1 |]; entry 1 2. 5. [| 1; 2 |] |]

let test_metrics () =
  let s = sample () in
  Alcotest.(check int) "tasks" 2 (S.task_count s);
  Alcotest.(check int) "procs" 3 (S.platform_procs s);
  check_float "makespan" 5. (S.makespan s);
  check_float "busy time" (4. +. 6.) (S.total_busy_time s);
  check_float "utilization" (10. /. 15.) (S.utilization s);
  Alcotest.(check (array int)) "allocation" [| 2; 2 |] (S.allocation s)

let test_make_validation () =
  let reject label entries =
    Alcotest.(check bool) label true
      (try
         ignore (S.make ~platform_procs:3 entries);
         false
       with Invalid_argument _ -> true)
  in
  reject "wrong task field" [| entry 1 0. 1. [| 0 |] |];
  reject "finish before start" [| entry 0 2. 1. [| 0 |] |];
  reject "empty proc set" [| entry 0 0. 1. [||] |];
  reject "unsorted proc set" [| entry 0 0. 1. [| 2; 0 |] |];
  reject "repeated proc" [| entry 0 0. 1. [| 1; 1 |] |];
  reject "proc out of range" [| entry 0 0. 1. [| 3 |] |];
  reject "NaN time" [| entry 0 nan 1. [| 0 |] |]

let test_empty_schedule () =
  let s = S.make ~platform_procs:4 [||] in
  check_float "makespan 0" 0. (S.makespan s);
  check_float "utilization 0" 0. (S.utilization s)

let diamond = Testutil.diamond_graph ()

let test_validate_ok () =
  (* valid schedule for the diamond: 0 then {1,2} in parallel then 3 *)
  let s =
    S.make ~platform_procs:2
      [|
        entry 0 0. 1. [| 0; 1 |];
        entry 1 1. 2. [| 0 |];
        entry 2 1. 3. [| 1 |];
        entry 3 3. 4. [| 0; 1 |];
      |]
  in
  Alcotest.(check bool) "valid" true (S.validate s ~graph:diamond = Ok ())

let test_validate_precedence_violation () =
  let s =
    S.make ~platform_procs:2
      [|
        entry 0 0. 1. [| 0 |];
        entry 1 0.5 2. [| 1 |];  (* starts before parent 0 finishes *)
        entry 2 1. 3. [| 0 |];
        entry 3 3. 4. [| 0; 1 |];
      |]
  in
  match S.validate s ~graph:diamond with
  | Ok () -> Alcotest.fail "precedence violation missed"
  | Error [ S.Precedence { src = 0; dst = 1 } ] -> ()
  | Error vs ->
    Alcotest.fail
      (Format.asprintf "unexpected violations: %a"
         (Format.pp_print_list S.pp_violation)
         vs)

let test_validate_overlap () =
  let s =
    S.make ~platform_procs:1
      [|
        entry 0 0. 2. [| 0 |];
        entry 1 1. 3. [| 0 |];  (* same processor, overlapping *)
      |]
  in
  let g = Testutil.two_chains_graph () in
  (* need a 4-node graph; build a 2-node one instead *)
  ignore g;
  let tasks =
    Array.init 2 (fun id -> Emts_ptg.Task.make ~id ~flop:1. ())
  in
  let g2 = Emts_ptg.Graph.of_tasks_and_edges tasks [] in
  match S.validate s ~graph:g2 with
  | Error [ S.Overlap { proc = 0; first = 0; second = 1 } ] -> ()
  | Ok () -> Alcotest.fail "overlap missed"
  | Error vs ->
    Alcotest.fail
      (Format.asprintf "unexpected: %a"
         (Format.pp_print_list S.pp_violation)
         vs)

(* Identical start times used to be fragile under the old polymorphic
   sort: with equal keys the sweep's pairing depended on unspecified
   ordering.  The monomorphic comparator breaks ties by finish then id,
   so three tasks occupying the same interval report exactly the two
   adjacent overlaps, deterministically. *)
let test_validate_overlap_identical_starts () =
  let tasks = Array.init 3 (fun id -> Emts_ptg.Task.make ~id ~flop:1. ()) in
  let g = Emts_ptg.Graph.of_tasks_and_edges tasks [] in
  let s =
    S.make ~platform_procs:1
      [| entry 0 0. 1. [| 0 |]; entry 1 0. 1. [| 0 |]; entry 2 0. 1. [| 0 |] |]
  in
  (match S.validate s ~graph:g with
  | Ok () -> Alcotest.fail "identical-start overlaps missed"
  | Error vs ->
    let pairs =
      List.filter_map
        (function
          | S.Overlap { proc = 0; first; second } -> Some (first, second)
          | _ -> None)
        vs
    in
    Alcotest.(check (list (pair int int)))
      "adjacent id-order pairs"
      [ (0, 1); (1, 2) ]
      (List.sort compare pairs));
  (* equal starts, different finishes: the shorter interval sorts first
     and the pair is still caught *)
  let tasks2 = Array.init 2 (fun id -> Emts_ptg.Task.make ~id ~flop:1. ()) in
  let g2 = Emts_ptg.Graph.of_tasks_and_edges tasks2 [] in
  let s2 =
    S.make ~platform_procs:1 [| entry 0 0. 2. [| 0 |]; entry 1 0. 1. [| 0 |] |]
  in
  match S.validate s2 ~graph:g2 with
  | Error [ S.Overlap { proc = 0; first = 1; second = 0 } ] -> ()
  | Ok () -> Alcotest.fail "equal-start overlap missed"
  | Error vs ->
    Alcotest.fail
      (Format.asprintf "unexpected: %a"
         (Format.pp_print_list S.pp_violation)
         vs)

let test_validate_allocation_mismatch () =
  let s =
    S.make ~platform_procs:2
      [|
        entry 0 0. 1. [| 0; 1 |];
        entry 1 1. 2. [| 0 |];
        entry 2 2. 3. [| 1 |];
        entry 3 3. 4. [| 0; 1 |];
      |]
  in
  match S.validate ~alloc:[| 2; 2; 1; 2 |] s ~graph:diamond with
  | Error [ S.Allocation_mismatch { task = 1; expected = 2; actual = 1 } ] -> ()
  | Ok () -> Alcotest.fail "mismatch missed"
  | Error _ -> Alcotest.fail "unexpected violations"

(* The rendered violation messages are part of the user-facing error
   surface (CLI diagnostics, fuzzer repro details): pin them. *)
let test_pp_violation_strings () =
  let render v = Format.asprintf "%a" S.pp_violation v in
  Alcotest.(check string)
    "precedence" "task 4 starts before its predecessor 2 finishes"
    (render (S.Precedence { src = 2; dst = 4 }));
  Alcotest.(check string)
    "overlap" "tasks 1 and 3 overlap on processor 0"
    (render (S.Overlap { proc = 0; first = 1; second = 3 }));
  Alcotest.(check string)
    "allocation mismatch" "task 5 uses 1 processors, allocation says 2"
    (render (S.Allocation_mismatch { task = 5; expected = 2; actual = 1 }))

(* A schedule broken in several independent ways reports every
   violation, not just the first one found. *)
let test_validate_reports_all () =
  let s =
    S.make ~platform_procs:2
      [|
        entry 0 0. 2. [| 0 |];
        entry 1 1. 3. [| 0 |];  (* overlaps 0 on proc 0, starts early *)
        entry 2 1. 3. [| 1 |];
        entry 3 3. 4. [| 0 |];  (* allocation says 2 *)
      |]
  in
  match S.validate ~alloc:[| 1; 1; 1; 2 |] s ~graph:diamond with
  | Ok () -> Alcotest.fail "violations missed"
  | Error vs ->
    let has pred = List.exists pred vs in
    Alcotest.(check bool) "precedence reported" true
      (has (function S.Precedence { src = 0; dst = 1 } -> true | _ -> false));
    Alcotest.(check bool) "overlap reported" true
      (has (function
        | S.Overlap { proc = 0; first = 0; second = 1 } -> true
        | _ -> false));
    Alcotest.(check bool) "mismatch reported" true
      (has (function
        | S.Allocation_mismatch { task = 3; expected = 2; actual = 1 } -> true
        | _ -> false))

(* Over-subscription: more simultaneous work than the platform has
   processors must surface as overlaps on some processor. *)
let test_validate_oversubscription () =
  let tasks = Array.init 3 (fun id -> Emts_ptg.Task.make ~id ~flop:1. ()) in
  let g = Emts_ptg.Graph.of_tasks_and_edges tasks [] in
  let s =
    S.make ~platform_procs:2
      [|
        entry 0 0. 2. [| 0; 1 |];
        entry 1 0. 2. [| 0 |];
        entry 2 0. 2. [| 1 |];
      |]
  in
  match S.validate s ~graph:g with
  | Ok () -> Alcotest.fail "over-subscription missed"
  | Error vs ->
    Alcotest.(check bool) "every violation is an overlap" true
      (List.for_all (function S.Overlap _ -> true | _ -> false) vs);
    Alcotest.(check bool) "both processors over-subscribed" true
      (List.length vs >= 2)

let test_adjacent_tasks_share_instant () =
  (* finish of one = start of next on the same processor: legal *)
  let tasks = Array.init 2 (fun id -> Emts_ptg.Task.make ~id ~flop:1. ()) in
  let g = Emts_ptg.Graph.of_tasks_and_edges tasks [ (0, 1) ] in
  let s =
    S.make ~platform_procs:1 [| entry 0 0. 1. [| 0 |]; entry 1 1. 2. [| 0 |] |]
  in
  Alcotest.(check bool) "back-to-back ok" true (S.validate s ~graph:g = Ok ())

let test_csv () =
  let csv = S.to_csv (sample ()) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header" "task,start,finish,procs" (List.hd lines);
  Alcotest.(check string) "row 0" "0,0,2,0|1" (List.nth lines 1)

let test_gantt_render () =
  let text = Gantt.render ~width:10 (sample ()) in
  Alcotest.(check bool) "has P000 row" true
    (String.split_on_char '\n' text
    |> List.exists (fun l -> String.length l > 4 && String.sub l 0 4 = "P000"));
  let capped = Gantt.render ~width:10 ~max_rows:1 (sample ()) in
  Alcotest.(check bool) "row cap note" true
    (String.split_on_char '\n' capped
    |> List.exists (fun l -> String.length l > 3 && String.sub l 0 3 = "..."))

let test_svg_render () =
  let s = sample () in
  let svg = Emts_sched.Svg.render ~width_px:300 ~row_px:10 s in
  Alcotest.(check bool) "svg envelope" true
    (String.length svg > 20 && String.sub svg 0 4 = "<svg");
  let count needle hay =
    let n = String.length needle in
    let hits = ref 0 in
    for i = 0 to String.length hay - n do
      if String.sub hay i n = needle then incr hits
    done;
    !hits
  in
  (* background + one rect per contiguous proc run (2 tasks x 1 run) *)
  Alcotest.(check int) "rect per run + frame" 3 (count "<rect " svg);
  Alcotest.(check bool) "time ticks" true (count "<line " svg = 5);
  Alcotest.(check bool) "tiny width rejected" true
    (try
       ignore (Emts_sched.Svg.render ~width_px:10 s);
       false
     with Invalid_argument _ -> true)

let test_svg_pair_and_save () =
  let s = sample () in
  let pair =
    Emts_sched.Svg.render_pair ~width_px:200 ~left:("A", s) ~right:("B", s) ()
  in
  Alcotest.(check bool) "both captions" true
    (let has needle =
       let n = String.length needle in
       let found = ref false in
       for i = 0 to String.length pair - n do
         if String.sub pair i n = needle then found := true
       done;
       !found
     in
     has "A —" && has "B —");
  let path = Filename.temp_file "emts_svg" ".svg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Emts_sched.Svg.save s path;
      Alcotest.(check bool) "file written" true (Sys.file_exists path))

let test_gantt_pair_alignment () =
  let a = sample () in
  let b =
    S.make ~platform_procs:2 [| entry 0 0. 1. [| 0 |]; entry 1 1. 2.5 [| 1 |] |]
  in
  let text = Gantt.render_pair ~width:20 ~left:("A", a) ~right:("B", b) () in
  (* 3 processors on the left, 2 on the right -> 3 chart rows + header + 2 summary *)
  let lines = String.split_on_char '\n' (String.trim text) in
  Alcotest.(check int) "line count" 6 (List.length lines)

(* renderers must accept every schedule the list scheduler can emit *)
let arbitrary_schedule =
  QCheck.map
    (fun (g, alloc) ->
      let tables =
        Emts_model.Memo.tabulate_graph Emts_model.synthetic
          (Emts_platform.make ~name:"r12" ~processors:12 ~speed_gflops:1.)
          g
      in
      let times = Emts_sched.Allocation.times_of_tables alloc ~tables in
      Emts_sched.List_scheduler.run ~graph:g ~times ~alloc ~procs:12)
    (Testutil.arbitrary_dag_alloc ~procs:12 ())

let prop_renderers_total =
  QCheck.Test.make ~name:"gantt/svg/csv renderers accept any schedule"
    ~count:100 arbitrary_schedule
    (fun s ->
      String.length (Gantt.render ~width:30 s) > 0
      && String.length (Emts_sched.Svg.render ~width_px:200 s) > 0
      && String.length (S.to_csv s) > 0)

let prop_allocation_round_trip =
  QCheck.Test.make
    ~name:"Schedule.allocation recovers the input allocation" ~count:100
    (Testutil.arbitrary_dag_alloc ~procs:12 ())
    (fun (g, alloc) ->
      let tables =
        Emts_model.Memo.tabulate_graph Emts_model.amdahl
          (Emts_platform.make ~name:"r12" ~processors:12 ~speed_gflops:1.)
          g
      in
      let times = Emts_sched.Allocation.times_of_tables alloc ~tables in
      let s = Emts_sched.List_scheduler.run ~graph:g ~times ~alloc ~procs:12 in
      S.allocation s = alloc)

let () =
  Alcotest.run "schedule"
    [
      ( "construction",
        [
          Alcotest.test_case "metrics" `Quick test_metrics;
          Alcotest.test_case "validation on make" `Quick test_make_validation;
          Alcotest.test_case "empty" `Quick test_empty_schedule;
        ] );
      ( "validate",
        [
          Alcotest.test_case "valid schedule" `Quick test_validate_ok;
          Alcotest.test_case "precedence violation" `Quick
            test_validate_precedence_violation;
          Alcotest.test_case "overlap" `Quick test_validate_overlap;
          Alcotest.test_case "overlap with identical starts" `Quick
            test_validate_overlap_identical_starts;
          Alcotest.test_case "allocation mismatch" `Quick
            test_validate_allocation_mismatch;
          Alcotest.test_case "adjacency is legal" `Quick
            test_adjacent_tasks_share_instant;
          Alcotest.test_case "violation messages" `Quick
            test_pp_violation_strings;
          Alcotest.test_case "all violations reported" `Quick
            test_validate_reports_all;
          Alcotest.test_case "over-subscription" `Quick
            test_validate_oversubscription;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "csv" `Quick test_csv;
          Alcotest.test_case "gantt" `Quick test_gantt_render;
          Alcotest.test_case "gantt pair" `Quick test_gantt_pair_alignment;
          Alcotest.test_case "svg" `Quick test_svg_render;
          Alcotest.test_case "svg pair + save" `Quick test_svg_pair_and_save;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_renderers_total; prop_allocation_round_trip ] );
    ]
