(* Tests for Emts_obs (clock, trace sink, span contexts, metrics
   registry, OpenMetrics exposition, flight recorder) and the
   observer-only guarantee: enabling telemetry must not change any
   scheduling result. *)

module Obs = Emts_obs
module J = Emts_resilience.Json

let read_lines path =
  In_channel.with_open_text path (fun ic ->
      let rec go acc =
        match In_channel.input_line ic with
        | None -> List.rev acc
        | Some l -> go (l :: acc)
      in
      go [])

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* --- clock ----------------------------------------------------------- *)

let test_clock_monotonic () =
  let prev = ref (Obs.Clock.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now_ns () in
    if Int64.compare t !prev < 0 then Alcotest.fail "clock went backwards";
    prev := t
  done;
  let t0 = Obs.Clock.now () in
  ignore (Sys.opaque_identity (Array.init 1000 Fun.id));
  Alcotest.(check bool) "elapsed >= 0" true (Obs.Clock.elapsed ~since:t0 >= 0.)

(* --- tracing --------------------------------------------------------- *)

let test_span_disabled () =
  Obs.Trace.stop ();
  Alcotest.(check bool) "inactive" false (Obs.Trace.active ());
  Alcotest.(check int) "span returns value" 42 (Obs.Trace.span "x" (fun () -> 42));
  Obs.Trace.instant "nothing";
  Obs.Trace.counter "nothing" [ ("v", 1.) ]

let test_trace_wellformed () =
  let path = Filename.temp_file "emts_obs" ".jsonl" in
  Obs.Trace.start ~path ();
  Alcotest.(check bool) "active" true (Obs.Trace.active ());
  Obs.Trace.span "outer" ~args:[ ("k", Obs.Trace.Str "v\"quoted\"") ]
    (fun () -> Obs.Trace.span "inner" (fun () -> ()));
  Obs.Trace.instant "marker" ~args:[ ("n", Obs.Trace.Int 3) ];
  Obs.Trace.counter "series" [ ("a", 1.5); ("b", 2.5) ];
  (* concurrent emission from worker domains, one pinned lane each *)
  let workers =
    List.init 2 (fun w ->
        Domain.spawn (fun () ->
            Obs.Trace.span "worker" ~tid:(100 + w) (fun () -> ())))
  in
  List.iter Domain.join workers;
  (* spans survive exceptions *)
  (try Obs.Trace.span "raising" (fun () -> failwith "boom")
   with Failure _ -> ());
  Obs.Trace.stop ();
  let lines = read_lines path in
  Alcotest.(check bool) "non-empty" true (List.length lines > 5);
  List.iter
    (fun l ->
      Alcotest.(check bool) "object per line" true
        (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}');
      List.iter
        (fun key ->
          Alcotest.(check bool)
            (Printf.sprintf "%s has %s" l key)
            true
            (contains ~needle:(Printf.sprintf "\"%s\":" key) l))
        [ "ph"; "ts"; "name"; "pid"; "tid" ])
    lines;
  let count needle =
    List.length (List.filter (fun l -> contains ~needle l) lines)
  in
  Alcotest.(check int) "outer span" 1 (count "\"name\":\"outer\"");
  Alcotest.(check int) "inner span" 1 (count "\"name\":\"inner\"");
  Alcotest.(check int) "worker spans" 2 (count "\"name\":\"worker\"");
  Alcotest.(check int) "raising span recorded" 1 (count "\"name\":\"raising\"");
  Alcotest.(check int) "instant" 1 (count "\"ph\":\"i\"");
  Alcotest.(check int) "counter event" 1 (count "\"ph\":\"C\"");
  Alcotest.(check bool) "escaped quote" true
    (count "v\\\"quoted\\\"" = 1);
  Alcotest.(check bool) "thread metadata" true
    (count "\"name\":\"thread_name\"" >= 3);
  Sys.remove path

(* --- spans ----------------------------------------------------------- *)

let event_named lines name =
  match
    List.find_opt
      (fun l -> contains ~needle:(Printf.sprintf "\"name\":\"%s\"" name) l)
      lines
  with
  | Some l -> l
  | None -> Alcotest.fail (Printf.sprintf "no %s event in trace" name)

let event_arg line key =
  match J.of_string line with
  | Error m -> Alcotest.fail (Printf.sprintf "unparseable event %s: %s" line m)
  | Ok j -> Option.bind (J.member "args" j) (J.member key)

let arg_int line key =
  match event_arg line key with
  | Some (J.Num n) -> int_of_float n
  | _ -> Alcotest.fail (Printf.sprintf "no integer arg %s in %s" key line)

let test_span_ids () =
  Alcotest.(check bool) "make_trace_id valid" true
    (Obs.Span.valid_trace_id (Obs.Span.make_trace_id ()));
  Alcotest.(check bool) "fresh ids" true
    (Obs.Span.make_trace_id () <> Obs.Span.make_trace_id ());
  List.iter
    (fun id ->
      Alcotest.(check bool) (Printf.sprintf "%S valid" id) true
        (Obs.Span.valid_trace_id id))
    [ "a"; "t1f-2.B_x"; String.make Obs.Span.max_trace_id_len 'z' ];
  List.iter
    (fun id ->
      Alcotest.(check bool) (Printf.sprintf "%S invalid" id) false
        (Obs.Span.valid_trace_id id))
    [
      "";
      "has space";
      "non\xc3\xa9ascii";
      String.make (Obs.Span.max_trace_id_len + 1) 'z';
    ]

(* Nesting: an inner span closes (and is written) before its enclosing
   span, carries the shared trace_id, and points at the outer span
   through parent_id; an instant emitted inside a span inherits the
   span as its parent. *)
let test_span_nesting () =
  let path = Filename.temp_file "emts_obs_span" ".jsonl" in
  Obs.Trace.start ~path ();
  Obs.Span.with_trace ~trace_id:"tNEST-1" (fun () ->
      Obs.Trace.span "outer" (fun () ->
          Obs.Trace.span "inner" (fun () -> ());
          Obs.Trace.instant "mark"));
  Obs.Trace.stop ();
  let lines = read_lines path in
  let outer = event_named lines "outer" in
  let inner = event_named lines "inner" in
  let mark = event_named lines "mark" in
  List.iter
    (fun l ->
      Alcotest.(check bool) "shared trace_id" true
        (event_arg l "trace_id" = Some (J.Str "tNEST-1")))
    [ outer; inner; mark ];
  let index_of l =
    let rec go i = function
      | [] -> Alcotest.fail "event vanished"
      | x :: rest -> if x = l then i else go (i + 1) rest
    in
    go 0 lines
  in
  Alcotest.(check bool) "inner written before outer" true
    (index_of inner < index_of outer);
  let outer_id = arg_int outer "span_id" in
  Alcotest.(check int) "inner.parent = outer" outer_id
    (arg_int inner "parent_id");
  Alcotest.(check int) "mark.parent = outer" outer_id
    (arg_int mark "parent_id");
  Alcotest.(check bool) "outer is a root" true
    (event_arg outer "parent_id" = None);
  (* an explicit ctx does not leak into the ambient slot *)
  Alcotest.(check bool) "ambient clear" true (Obs.Span.current () = None);
  Sys.remove path

(* --- flight recorder -------------------------------------------------- *)

let test_flight_recorder () =
  Obs.Trace.stop ();
  Obs.Metrics.reset ();
  Obs.Flight.configure ~capacity:4 ();
  Alcotest.(check bool) "enabled" true (Obs.Flight.enabled ());
  (* trace events reach the ring even with no trace sink open *)
  for i = 1 to 10 do
    Obs.Trace.instant (Printf.sprintf "ev%d" i)
  done;
  let path = Filename.temp_file "emts_flight" ".jsonl" in
  (match Obs.Flight.dump ~path with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* an unwritable path is a clean error, never an exception *)
  (match Obs.Flight.dump ~path:"/nonexistent-dir/flight.jsonl" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "dump to an unwritable path succeeded");
  Obs.Flight.disable ();
  Alcotest.(check bool) "disabled" false (Obs.Flight.enabled ());
  let lines = read_lines path in
  (* header + the 4 retained events + metrics snapshot *)
  Alcotest.(check int) "line count" 6 (List.length lines);
  let header = List.hd lines in
  Alcotest.(check bool) "header" true
    (contains ~needle:"{\"flight\":\"emts\"" header
    && contains ~needle:"\"events\":4" header
    && contains ~needle:"\"dropped\":6" header);
  (* ring keeps the newest events, oldest first in the dump *)
  List.iteri
    (fun i l ->
      if i >= 1 && i <= 4 then
        Alcotest.(check bool)
          (Printf.sprintf "slot %d is ev%d" i (i + 6))
          true
          (contains ~needle:(Printf.sprintf "\"name\":\"ev%d\"" (i + 6)) l))
    lines;
  let last = List.nth lines 5 in
  Alcotest.(check bool) "metrics snapshot" true
    (contains ~needle:"{\"metrics\":{" last);
  Sys.remove path

(* --- metrics --------------------------------------------------------- *)

let test_counters_multidomain () =
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  let c = Obs.Metrics.counter "test.multidomain" in
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Obs.Metrics.incr c
            done))
  in
  List.iter Domain.join workers;
  Obs.Metrics.set_enabled false;
  Alcotest.(check int) "atomic count" 40_000 (Obs.Metrics.counter_value c);
  Alcotest.(check (option int))
    "find_counter" (Some 40_000)
    (Obs.Metrics.find_counter "test.multidomain")

let test_metrics_disabled_noop () =
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled false;
  let c = Obs.Metrics.counter "test.disabled" in
  let h = Obs.Metrics.histogram "test.disabled_hist" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 10;
  Obs.Metrics.observe h 1.;
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value c);
  Alcotest.(check bool) "histogram untouched" true
    (Obs.Metrics.histogram_value h = None)

let test_histogram_instrument () =
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  let h = Obs.Metrics.histogram "test.hist" in
  List.iter (Obs.Metrics.observe h) [ 1.; 2.; 3.; 4. ];
  Obs.Metrics.set_enabled false;
  (match Obs.Metrics.histogram_value h with
  | None -> Alcotest.fail "expected observations"
  | Some d ->
    Alcotest.(check int) "count" 4 d.Obs.Metrics.count;
    Alcotest.(check (float 1e-9)) "mean" 2.5 d.Obs.Metrics.mean;
    Alcotest.(check (float 1e-9)) "min" 1. d.Obs.Metrics.min;
    Alcotest.(check (float 1e-9)) "max" 4. d.Obs.Metrics.max;
    Alcotest.(check (float 1e-9)) "total" 10. d.Obs.Metrics.total);
  (* same name returns the same instrument; other kind is rejected *)
  List.iter (Obs.Metrics.observe (Obs.Metrics.histogram "test.hist")) [];
  Alcotest.(check bool) "kind clash rejected" true
    (try
       ignore (Obs.Metrics.counter "test.hist");
       false
     with Invalid_argument _ -> true)

let test_render_and_json () =
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  let c = Obs.Metrics.counter "test.render_counter" in
  Obs.Metrics.add c 7;
  let g = Obs.Metrics.gauge "test.render_gauge" in
  Obs.Metrics.set_gauge g 1.25;
  let h = Obs.Metrics.histogram "test.render_hist" in
  Obs.Metrics.observe h 2.;
  Obs.Metrics.set_enabled false;
  let table = Obs.Metrics.render () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("render has " ^ needle) true
        (contains ~needle table))
    [ "test.render_counter"; "test.render_gauge"; "test.render_hist"; "7" ];
  let json = Obs.Metrics.to_json () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json has " ^ needle) true
        (contains ~needle json))
    [
      "\"counters\":{"; "\"gauges\":{"; "\"histograms\":{";
      "\"test.render_counter\":7"; "\"count\":1";
    ];
  (* reset zeroes but keeps instrument identity *)
  Obs.Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Metrics.counter_value c);
  Alcotest.(check bool) "reset clears histogram" true
    (Obs.Metrics.histogram_value h = None)

(* Every emitted JSON artifact must parse back, including non-finite
   values: a NaN gauge serialises as [null] (a bare [nan] token is not
   JSON and broke downstream parsers), infinities as parseable
   strings. *)
let test_json_round_trip_nonfinite () =
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  Obs.Metrics.set_gauge (Obs.Metrics.gauge "test.rt_nan_gauge") Float.nan;
  Obs.Metrics.set_gauge (Obs.Metrics.gauge "test.rt_inf_gauge") infinity;
  ignore (Obs.Metrics.histogram "test.rt_empty_hist");
  Obs.Metrics.set_enabled false;
  let json = Obs.Metrics.to_json () in
  Alcotest.(check bool) "no bare nan token" false (contains ~needle:":nan" json);
  (match Emts_resilience.Json.of_string json with
  | Error e -> Alcotest.failf "metrics json does not parse back: %s" e
  | Ok v -> (
    match Emts_resilience.Json.(member "gauges" v) with
    | Some (Emts_resilience.Json.Obj gauges) ->
      Alcotest.(check bool) "nan gauge is null" true
        (List.assoc_opt "test.rt_nan_gauge" gauges
        = Some Emts_resilience.Json.Null);
      Alcotest.(check bool) "inf gauge survives" true
        (List.assoc_opt "test.rt_inf_gauge" gauges
        = Some (Emts_resilience.Json.Str "inf"))
    | _ -> Alcotest.fail "gauges object missing"));
  (* the resilience serialiser makes the same guarantee for raw [Num] *)
  let raw =
    Emts_resilience.Json.(
      to_string (Obj [ ("x", Num Float.nan); ("y", Num infinity) ]))
  in
  match Emts_resilience.Json.of_string raw with
  | Error e -> Alcotest.failf "raw Num json does not parse back: %s" e
  | Ok v ->
    Alcotest.(check bool) "raw NaN is null" true
      (Emts_resilience.Json.member "x" v = Some Emts_resilience.Json.Null);
    Alcotest.(check bool) "raw inf round-trips" true
      (match Emts_resilience.Json.member "y" v with
      | Some j -> Emts_resilience.Json.to_float j = Ok infinity
      | None -> false)

(* --- OpenMetrics exposition ------------------------------------------ *)

(* Golden-file comparison, same protocol as test_golden.ml: regenerate
   with EMTS_GOLDEN_UPDATE=1 dune runtest test --force. *)
let update_mode = Sys.getenv_opt "EMTS_GOLDEN_UPDATE" <> None

let golden_source_dir =
  match Sys.getenv_opt "DUNE_SOURCEROOT" with
  | Some root -> Filename.concat (Filename.concat root "test") "golden"
  | None -> "golden"

let check_golden name actual =
  let sandbox_path = Filename.concat "golden" (name ^ ".expected") in
  if update_mode then begin
    let path = Filename.concat golden_source_dir (name ^ ".expected") in
    Out_channel.with_open_bin path (fun oc -> output_string oc actual);
    Printf.printf "updated %s\n" path
  end
  else if not (Sys.file_exists sandbox_path) then
    Alcotest.fail
      (Printf.sprintf
         "missing golden file %s — run with EMTS_GOLDEN_UPDATE=1 to create it"
         sandbox_path)
  else
    let expected =
      In_channel.with_open_bin sandbox_path In_channel.input_all
    in
    if String.equal expected actual then ()
    else
      Alcotest.fail
        (Printf.sprintf
           "%s: output differs from golden file (%d bytes vs %d expected) — \
            if the change is intentional, regenerate with \
            EMTS_GOLDEN_UPDATE=1"
           name (String.length actual) (String.length expected))

(* The registry is global to the test binary, so the golden file keeps
   only this test's uniquely-prefixed om.* instruments (every other
   name in this binary starts with test. or gc.) plus the terminator. *)
let filter_exposition body =
  String.split_on_char '\n' body
  |> List.filter (fun l -> contains ~needle:"emts_om_" l || l = "# EOF")
  |> fun ls -> String.concat "\n" ls ^ "\n"

let test_openmetrics_golden () =
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  let c =
    Obs.Metrics.counter
      ~help:"Total \"om\" requests — first line\nsecond \\ line."
      "om.requests.total"
  in
  Obs.Metrics.add c 7;
  (* a counter whose name does not end in _total gets the suffix added
     on its sample line only *)
  let hits = Obs.Metrics.counter ~help:"Cache hits." "om.hits" in
  Obs.Metrics.incr hits;
  let g = Obs.Metrics.gauge ~help:"Queue depth." "om.queue_depth" in
  Obs.Metrics.set_gauge g (-2.5);
  let h = Obs.Metrics.histogram ~help:"Solve latency." "om.latency_s" in
  (* 0.0 exercises the le="0" bucket for nonpositive observations *)
  List.iter (Obs.Metrics.observe h) [ 0.; 0.001; 0.001; 0.25 ];
  (* registered but never observed: still exposed, with empty buckets *)
  ignore (Obs.Metrics.histogram ~help:"Never observed." "om.empty_s");
  Obs.Metrics.set_enabled false;
  let body = Obs.Metrics.render_openmetrics () in
  let n = String.length body in
  Alcotest.(check bool) "terminated" true
    (n >= 6 && String.sub body (n - 6) 6 = "# EOF\n");
  check_golden "openmetrics" (filter_exposition body)

(* --- observer-only guarantee ----------------------------------------- *)

let emts_result ~seed ~early_reject () =
  let rng = Emts_prng.create ~seed:7 () in
  let graph = Testutil.random_triangular_dag rng ~n:40 ~p:0.15 in
  let ctx =
    Emts_alloc.Common.make_ctx ~model:Emts_model.synthetic
      ~platform:Emts_platform.chti ~graph
  in
  let config =
    { Emts.Algorithm.emts5 with domains = 2; early_reject }
  in
  Emts.Algorithm.run_ctx ~rng:(Emts_prng.create ~seed ()) ~config ~ctx ()

let test_determinism_tracing () =
  (* identical PRNG stream and results with every sink off vs. on *)
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled false;
  Obs.Trace.stop ();
  let plain = emts_result ~seed:99 ~early_reject:false () in
  let path = Filename.temp_file "emts_obs_det" ".jsonl" in
  Obs.Metrics.set_enabled true;
  Obs.Trace.start ~path ();
  let observed = emts_result ~seed:99 ~early_reject:false () in
  Obs.Trace.stop ();
  Obs.Metrics.set_enabled false;
  Alcotest.(check (float 0.)) "best_fitness identical" plain.Emts.Algorithm.makespan
    observed.Emts.Algorithm.makespan;
  Alcotest.(check (array int)) "allocation identical"
    plain.Emts.Algorithm.alloc observed.Emts.Algorithm.alloc;
  Alcotest.(check int) "evaluation counts identical"
    plain.Emts.Algorithm.ea.Emts_ea.evaluations
    observed.Emts.Algorithm.ea.Emts_ea.evaluations;
  (* the trace actually recorded the generations *)
  let lines = read_lines path in
  let gen_spans =
    List.length
      (List.filter (fun l -> contains ~needle:"\"name\":\"ea.generation\"" l) lines)
  in
  Alcotest.(check int) "one span per generation" 5 gen_spans;
  Alcotest.(check bool) "worker lanes present" true
    (List.exists (fun l -> contains ~needle:"\"name\":\"worker 1\"" l) lines
    && List.exists (fun l -> contains ~needle:"\"name\":\"worker 2\"" l) lines);
  Sys.remove path

let test_counters_match_result () =
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  let result = emts_result ~seed:123 ~early_reject:true () in
  Obs.Metrics.set_enabled false;
  Alcotest.(check (option int))
    "ea.evaluations matches result.evaluations"
    (Some result.Emts.Algorithm.ea.Emts_ea.evaluations)
    (Obs.Metrics.find_counter "ea.evaluations");
  let hits =
    Option.value ~default:0 (Obs.Metrics.find_counter "ea.early_reject.hits")
  in
  let misses =
    Option.value ~default:0
      (Obs.Metrics.find_counter "ea.early_reject.misses")
  in
  (* seed evaluations bypass the bounded path only when cutoff is inf:
     every fitness call goes through early_reject, so hits+misses
     accounts for every evaluation *)
  Alcotest.(check int) "hits + misses = evaluations"
    result.Emts.Algorithm.ea.Emts_ea.evaluations (hits + misses);
  Alcotest.(check bool) "early reject fired" true (hits > 0)

let test_determinism_early_reject_metrics () =
  (* metrics collection on the early-reject path must not change results *)
  Obs.Metrics.set_enabled false;
  let plain = emts_result ~seed:5 ~early_reject:true () in
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  let observed = emts_result ~seed:5 ~early_reject:true () in
  Obs.Metrics.set_enabled false;
  Alcotest.(check (float 0.)) "makespan identical" plain.Emts.Algorithm.makespan
    observed.Emts.Algorithm.makespan;
  Alcotest.(check (array int)) "allocation identical"
    plain.Emts.Algorithm.alloc observed.Emts.Algorithm.alloc

(* Every telemetry sink at once — trace, metrics, GC profiling, flight
   recorder — against all of them off: bit-identical results. *)
let test_determinism_full_telemetry () =
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled false;
  Obs.Trace.stop ();
  let plain = emts_result ~seed:31 ~early_reject:true () in
  let path = Filename.temp_file "emts_obs_full" ".jsonl" in
  Obs.Trace.start ~path ();
  Obs.Metrics.set_enabled true;
  Obs.Gcprof.set_enabled true;
  Obs.Flight.configure ~capacity:256 ();
  let observed = emts_result ~seed:31 ~early_reject:true () in
  Obs.Gcprof.set_enabled false;
  Obs.Metrics.set_enabled false;
  Obs.Flight.disable ();
  Obs.Trace.stop ();
  Alcotest.(check (float 0.)) "makespan identical" plain.Emts.Algorithm.makespan
    observed.Emts.Algorithm.makespan;
  Alcotest.(check (array int)) "allocation identical"
    plain.Emts.Algorithm.alloc observed.Emts.Algorithm.alloc;
  Alcotest.(check int) "evaluation counts identical"
    plain.Emts.Algorithm.ea.Emts_ea.evaluations
    observed.Emts.Algorithm.ea.Emts_ea.evaluations;
  (* the GC profiler measured every evaluation into the registry *)
  (match Obs.Metrics.histogram_value (Obs.Metrics.histogram "gc.eval.alloc_bytes") with
  | Some d ->
    Alcotest.(check bool) "per-eval allocation recorded" true
      (d.Obs.Metrics.count >= observed.Emts.Algorithm.ea.Emts_ea.evaluations
      && d.Obs.Metrics.total > 0.)
  | None -> Alcotest.fail "gc.eval.alloc_bytes is empty");
  Sys.remove path

let () =
  Alcotest.run "obs"
    [
      ("clock", [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ]);
      ( "trace",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_span_disabled;
          Alcotest.test_case "JSONL well-formed" `Quick test_trace_wellformed;
        ] );
      ( "spans",
        [
          Alcotest.test_case "trace ids" `Quick test_span_ids;
          Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
        ] );
      ( "flight",
        [ Alcotest.test_case "ring, dump, bounds" `Quick test_flight_recorder ] );
      ( "metrics",
        [
          Alcotest.test_case "multi-domain counters" `Quick
            test_counters_multidomain;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_metrics_disabled_noop;
          Alcotest.test_case "histogram instrument" `Quick
            test_histogram_instrument;
          Alcotest.test_case "render and json" `Quick test_render_and_json;
          Alcotest.test_case "json round-trips non-finite values" `Quick
            test_json_round_trip_nonfinite;
          Alcotest.test_case "openmetrics golden" `Quick
            test_openmetrics_golden;
        ] );
      ( "observer-only",
        [
          Alcotest.test_case "tracing preserves determinism" `Slow
            test_determinism_tracing;
          Alcotest.test_case "counters match EA result" `Slow
            test_counters_match_result;
          Alcotest.test_case "early-reject metrics preserve results" `Slow
            test_determinism_early_reject_metrics;
          Alcotest.test_case "full telemetry preserves results" `Slow
            test_determinism_full_telemetry;
        ] );
    ]
