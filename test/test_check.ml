(* Tests for the fuzzing harness itself (lib/check): the scenario
   sampler, the oracle registry, the shrinker, the corpus round-trip
   and the fuzz driver's bookkeeping. *)

module Check = Emts_check
module Scenario = Check.Scenario
module Gen = Check.Gen
module Oracle = Check.Oracle

let rng seed = Emts_prng.create ~seed ()

(* --- scenario sampling --- *)

let test_scenario_fields () =
  let r = rng 3 in
  for _ = 1 to 50 do
    let s = Gen.scenario r in
    Alcotest.(check bool) "at least one task" true
      (Emts_ptg.Graph.task_count s.Scenario.graph >= 1);
    Alcotest.(check bool) "procs >= 1" true (s.Scenario.procs >= 1);
    Alcotest.(check bool) "model resolvable" true
      (List.mem_assoc s.Scenario.model Scenario.models);
    ignore (Scenario.model s);
    Alcotest.(check int) "platform size" s.Scenario.procs
      (Scenario.platform s).Emts_platform.processors
  done

let test_scenario_deterministic () =
  let describe_n seed =
    let r = rng seed in
    List.init 10 (fun _ -> Scenario.describe (Gen.scenario r))
  in
  Alcotest.(check (list string))
    "same seed, same scenarios" (describe_n 9) (describe_n 9)

let test_models_include_adversaries () =
  let names = List.map fst Scenario.models in
  List.iter
    (fun m ->
      Alcotest.(check bool) (m ^ " registered") true (List.mem m names))
    [ "amdahl"; "table"; "downey" ]

(* --- oracle registry --- *)

let test_oracle_lookup () =
  Alcotest.(check bool) "find differential" true
    (Oracle.find "differential" <> None);
  Alcotest.(check bool) "case-insensitive" true
    (Oracle.find "Differential" <> None);
  Alcotest.(check bool) "unknown rejected" true (Oracle.find "nonsense" = None);
  Alcotest.(check (list string))
    "registry names"
    [ "validate"; "differential"; "determinism"; "wire"; "resilience"; "chaos";
      "fleet"; "online" ]
    Oracle.names

let test_oracle_exception_barrier () =
  let boom =
    { Oracle.name = "boom"; doc = "always raises"; check = (fun _ -> failwith "kaboom") }
  in
  let s = Gen.scenario (rng 1) in
  match Oracle.run boom s with
  | Ok () -> Alcotest.fail "exception swallowed"
  | Error m ->
    Alcotest.(check bool) "diagnostic mentions the exception" true
      (Testutil.contains_substring m "kaboom")

(* The cheap offline oracles must accept a spread of sampled scenarios
   (the CLI smoke job fuzzes for 30s; this is the suite-level variant). *)
let test_offline_oracles_pass () =
  let r = rng 42 in
  for _ = 1 to 5 do
    let s = Gen.scenario r in
    List.iter
      (fun name ->
        match Oracle.find name with
        | None -> Alcotest.fail ("missing oracle " ^ name)
        | Some o -> (
          match Oracle.run o s with
          | Ok () -> ()
          | Error m ->
            Alcotest.fail
              (Printf.sprintf "%s failed on %s: %s" name (Scenario.describe s)
                 m)))
      [ "validate"; "differential" ]
  done

(* --- shrinking --- *)

let test_shrink_minimises () =
  (* An oracle failing whenever the graph has > 3 tasks must shrink to
     at most ... the shrinker halves and prefix-truncates, so it should
     land well under the original size and still fail. *)
  let failing =
    {
      Oracle.name = "big-graph";
      doc = "fails on > 3 tasks";
      check =
        (fun s ->
          if Emts_ptg.Graph.task_count s.Scenario.graph > 3 then
            Error "too big"
          else Ok ());
    }
  in
  let base =
    {
      Scenario.graph = Gen.costed_daggen (rng 7) ~n:40;
      procs = 8;
      model = "amdahl";
      seed = 1;
      fault_plan = None;
    }
  in
  let shrunk = Check.Shrink.shrink ~oracle:failing base in
  let n = Emts_ptg.Graph.task_count shrunk.Scenario.graph in
  Alcotest.(check bool) "still failing" true
    (Oracle.run failing shrunk <> Ok ());
  Alcotest.(check bool) "smaller than the original" true (n < 40);
  Alcotest.(check int) "minimal failing size" 4 n

let test_shrink_keeps_passing_scenario () =
  let passing =
    { Oracle.name = "ok"; doc = "never fails"; check = (fun _ -> Ok ()) }
  in
  let base =
    {
      Scenario.graph = Gen.costed_daggen (rng 8) ~n:10;
      procs = 4;
      model = "synthetic";
      seed = 2;
      fault_plan = None;
    }
  in
  let shrunk = Check.Shrink.shrink ~oracle:passing base in
  Alcotest.(check int) "untouched" 10
    (Emts_ptg.Graph.task_count shrunk.Scenario.graph)

(* --- corpus --- *)

let in_temp_dir f =
  let dir = Filename.temp_file "test_check" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun x -> try Sys.remove (Filename.concat dir x) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let test_corpus_round_trip () =
  in_temp_dir (fun dir ->
      let s = Gen.scenario (rng 5) in
      let path =
        Check.Corpus.save ~dir ~oracle:"validate" ~detail:"d" s
      in
      match Check.Corpus.load path with
      | Error m -> Alcotest.fail m
      | Ok r ->
        Alcotest.(check string) "oracle" "validate" r.Check.Corpus.oracle;
        Alcotest.(check string) "detail" "d" r.Check.Corpus.detail;
        let s' = r.Check.Corpus.scenario in
        Alcotest.(check int) "procs" s.Scenario.procs s'.Scenario.procs;
        Alcotest.(check string) "model" s.Scenario.model s'.Scenario.model;
        Alcotest.(check int) "seed" s.Scenario.seed s'.Scenario.seed;
        Alcotest.(check string) "graph round-trips"
          (Emts_ptg.Serial.to_string s.Scenario.graph)
          (Emts_ptg.Serial.to_string s'.Scenario.graph))

let test_corpus_rejects_garbage () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "bad.json" in
      Out_channel.with_open_bin path (fun oc ->
          output_string oc "{\"oracle\":\"validate\"");
      match Check.Corpus.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "truncated json accepted")

(* --- fuzz driver --- *)

let test_fuzz_driver_bookkeeping () =
  let flaky_failures = ref 0 in
  let flaky =
    {
      Oracle.name = "flaky";
      doc = "fails on every 2nd scenario";
      check =
        (fun _ ->
          incr flaky_failures;
          if !flaky_failures mod 2 = 0 then Error "even" else Ok ());
    }
  in
  let steady =
    { Oracle.name = "steady"; doc = "never fails"; check = (fun _ -> Ok ()) }
  in
  let report =
    Check.Fuzz.run ~max_scenarios:6 ~oracles:[ flaky; steady ]
      ~time_budget:60. ~seed:11 ()
  in
  Alcotest.(check int) "all scenarios sampled" 6 report.Check.Fuzz.scenarios;
  (* flaky fails on its 2nd check and is retired; steady keeps going *)
  Alcotest.(check (list (pair string int)))
    "per-oracle run counts"
    [ ("flaky", 2); ("steady", 6) ]
    report.Check.Fuzz.runs;
  match report.Check.Fuzz.failures with
  | [ f ] ->
    Alcotest.(check string) "failing oracle" "flaky" f.Check.Fuzz.oracle;
    Alcotest.(check bool) "no repro without corpus dir" true
      (f.Check.Fuzz.repro = None)
  | fs ->
    Alcotest.fail
      (Printf.sprintf "expected exactly one failure, got %d" (List.length fs))

let test_fuzz_reproducible () =
  let seen = ref [] in
  let recorder =
    {
      Oracle.name = "recorder";
      doc = "records descriptions";
      check =
        (fun s ->
          seen := Scenario.describe s :: !seen;
          Ok ());
    }
  in
  let round () =
    seen := [];
    ignore
      (Check.Fuzz.run ~max_scenarios:5 ~oracles:[ recorder ]
         ~time_budget:60. ~seed:4 ());
    !seen
  in
  Alcotest.(check (list string)) "same seed, same stream" (round ()) (round ())

let () =
  Alcotest.run "check"
    [
      ( "scenario",
        [
          Alcotest.test_case "fields" `Quick test_scenario_fields;
          Alcotest.test_case "deterministic" `Quick
            test_scenario_deterministic;
          Alcotest.test_case "adversarial models" `Quick
            test_models_include_adversaries;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "lookup" `Quick test_oracle_lookup;
          Alcotest.test_case "exception barrier" `Quick
            test_oracle_exception_barrier;
          Alcotest.test_case "offline oracles pass" `Slow
            test_offline_oracles_pass;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "minimises" `Quick test_shrink_minimises;
          Alcotest.test_case "no-op on pass" `Quick
            test_shrink_keeps_passing_scenario;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "round trip" `Quick test_corpus_round_trip;
          Alcotest.test_case "garbage rejected" `Quick
            test_corpus_rejects_garbage;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "bookkeeping" `Quick test_fuzz_driver_bookkeeping;
          Alcotest.test_case "reproducible" `Quick test_fuzz_reproducible;
        ] );
    ]
