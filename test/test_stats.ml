(* Tests for Emts_stats: accumulators, summaries, quantiles, histograms. *)

module S = Emts_stats

let check_float = Alcotest.(check (float 1e-9))
let check_close = Alcotest.(check (float 1e-6))

let test_acc_basic () =
  let acc = S.Acc.create () in
  List.iter (S.Acc.add acc) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (S.Acc.count acc);
  check_float "mean" 5. (S.Acc.mean acc);
  check_close "variance (n-1)" (32. /. 7.) (S.Acc.variance acc);
  check_float "min" 2. (S.Acc.min acc);
  check_float "max" 9. (S.Acc.max acc);
  check_float "total" 40. (S.Acc.total acc)

let test_acc_empty () =
  let acc = S.Acc.create () in
  Alcotest.(check int) "count 0" 0 (S.Acc.count acc);
  check_float "variance of empty" 0. (S.Acc.variance acc);
  Alcotest.check_raises "mean of empty"
    (Invalid_argument "Emts_stats.Acc.mean: empty accumulator") (fun () ->
      ignore (S.Acc.mean acc))

let test_acc_single () =
  let acc = S.Acc.create () in
  S.Acc.add acc 3.5;
  check_float "mean" 3.5 (S.Acc.mean acc);
  check_float "variance" 0. (S.Acc.variance acc);
  check_float "stddev" 0. (S.Acc.stddev acc)

let test_acc_matches_two_pass () =
  let rng = Emts_prng.create ~seed:1 () in
  let xs = Array.init 1000 (fun _ -> Emts_prng.float rng 100.) in
  let acc = S.Acc.create () in
  Array.iter (S.Acc.add acc) xs;
  let n = float_of_int (Array.length xs) in
  let mean = Array.fold_left ( +. ) 0. xs /. n in
  let var =
    Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. xs /. (n -. 1.)
  in
  Alcotest.(check (float 1e-6)) "mean matches two-pass" mean (S.Acc.mean acc);
  Alcotest.(check (float 1e-6)) "variance matches two-pass" var
    (S.Acc.variance acc)

let test_acc_merge () =
  let rng = Emts_prng.create ~seed:2 () in
  let xs = Array.init 500 (fun _ -> Emts_prng.normal rng ~mu:10. ~sigma:3.) in
  let whole = S.Acc.create () in
  Array.iter (S.Acc.add whole) xs;
  let left = S.Acc.create () and right = S.Acc.create () in
  Array.iteri (fun i x -> S.Acc.add (if i < 123 then left else right) x) xs;
  let merged = S.Acc.merge left right in
  Alcotest.(check int) "count" (S.Acc.count whole) (S.Acc.count merged);
  check_close "mean" (S.Acc.mean whole) (S.Acc.mean merged);
  check_close "variance" (S.Acc.variance whole) (S.Acc.variance merged);
  check_float "min" (S.Acc.min whole) (S.Acc.min merged);
  check_float "max" (S.Acc.max whole) (S.Acc.max merged)

let test_acc_merge_with_empty () =
  let acc = S.Acc.create () in
  List.iter (S.Acc.add acc) [ 1.; 2.; 3. ];
  let merged = S.Acc.merge acc (S.Acc.create ()) in
  check_float "mean preserved" 2. (S.Acc.mean merged);
  let merged2 = S.Acc.merge (S.Acc.create ()) acc in
  check_float "mean preserved (flipped)" 2. (S.Acc.mean merged2)

let test_acc_merge_both_empty () =
  let merged = S.Acc.merge (S.Acc.create ()) (S.Acc.create ()) in
  Alcotest.(check int) "count" 0 (S.Acc.count merged);
  Alcotest.(check bool) "mean still rejects empty" true
    (try
       ignore (S.Acc.mean merged);
       false
     with Invalid_argument _ -> true)

let test_acc_merge_singletons () =
  (* merging two single-element accumulators must produce the exact
     sample variance of the pair: for {3, 5}, mean 4 and variance 2 *)
  let a = S.Acc.create () and b = S.Acc.create () in
  S.Acc.add a 3.;
  S.Acc.add b 5.;
  let merged = S.Acc.merge a b in
  Alcotest.(check int) "count" 2 (S.Acc.count merged);
  check_float "mean" 4. (S.Acc.mean merged);
  check_close "variance" 2. (S.Acc.variance merged);
  check_close "stddev" (sqrt 2.) (S.Acc.stddev merged)

let test_acc_merge_minmax () =
  (* min/max must propagate from whichever side holds the extremum,
     including when one side's range contains the other's *)
  let a = S.Acc.create () and b = S.Acc.create () in
  List.iter (S.Acc.add a) [ -7.; 2. ];
  List.iter (S.Acc.add b) [ 0.; 11. ];
  let merged = S.Acc.merge a b in
  check_float "min from left" (-7.) (S.Acc.min merged);
  check_float "max from right" 11. (S.Acc.max merged);
  let inner = S.Acc.create () in
  List.iter (S.Acc.add inner) [ -1.; 1. ];
  let nested = S.Acc.merge merged inner in
  check_float "min survives nesting" (-7.) (S.Acc.min nested);
  check_float "max survives nesting" 11. (S.Acc.max nested)

let test_student_t () =
  check_float "df=1" 12.706 (S.student_t_975 1);
  check_float "df=10" 2.228 (S.student_t_975 10);
  check_float "df=30" 2.042 (S.student_t_975 30);
  check_float "df large" 1.96 (S.student_t_975 1000);
  Alcotest.check_raises "df=0 rejected"
    (Invalid_argument "Emts_stats.student_t_975: df must be positive")
    (fun () -> ignore (S.student_t_975 0))

let test_summary () =
  let s = S.summarize [| 10.; 12.; 14. |] in
  Alcotest.(check int) "n" 3 s.S.n;
  check_float "mean" 12. s.S.mean;
  check_float "stddev" 2. s.S.stddev;
  (* t(0.975, df=2) = 4.303; hw = 4.303 * 2 / sqrt 3 *)
  check_close "ci95" (4.303 *. 2. /. sqrt 3.) s.S.ci95_half_width;
  check_float "min" 10. s.S.min;
  check_float "max" 14. s.S.max

let test_summary_single () =
  let s = S.summarize [| 42. |] in
  check_float "mean" 42. s.S.mean;
  check_float "no CI for n=1" 0. s.S.ci95_half_width

let test_quantiles () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "median interpolates" 2.5 (S.median xs);
  check_float "q0 = min" 1. (S.quantile xs 0.);
  check_float "q1 = max" 4. (S.quantile xs 1.);
  check_float "q0.25" 1.75 (S.quantile xs 0.25);
  check_float "odd median" 3. (S.median [| 5.; 3.; 1. |]);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Emts_stats.quantile: q must lie in [0, 1]") (fun () ->
      ignore (S.quantile xs 1.5))

let test_geometric_mean () =
  check_close "gm(2,8) = 4" 4. (S.geometric_mean [| 2.; 8. |]);
  check_close "gm of equal" 3. (S.geometric_mean [| 3.; 3.; 3. |]);
  Alcotest.check_raises "non-positive rejected"
    (Invalid_argument "Emts_stats.geometric_mean: non-positive value")
    (fun () -> ignore (S.geometric_mean [| 1.; 0. |]))

let test_histogram () =
  let h = S.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  List.iter (S.Histogram.add h) [ 0.5; 1.5; 1.9; 9.99; -1.; 10.; 10.5 ];
  Alcotest.(check int) "in-range count" 4 (S.Histogram.count h);
  Alcotest.(check int) "bin 0" 1 (S.Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1" 2 (S.Histogram.bin_count h 1);
  Alcotest.(check int) "bin 9 (hi is exclusive)" 1 (S.Histogram.bin_count h 9);
  Alcotest.(check int) "underflow" 1 (S.Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (S.Histogram.overflow h);
  check_float "bin center" 0.5 (S.Histogram.bin_center h 0);
  check_close "density of bin 1" (2. /. 4.) (S.Histogram.density h 1);
  Alcotest.(check bool)
    "render mentions counts" true
    (String.length (S.Histogram.render h) > 0)

let test_histogram_density_integrates () =
  let rng = Emts_prng.create ~seed:3 () in
  let h = S.Histogram.create ~lo:(-4.) ~hi:4. ~bins:32 in
  for _ = 1 to 50_000 do
    S.Histogram.add h (Emts_prng.normal rng ~mu:0. ~sigma:1.)
  done;
  let integral = ref 0. in
  for i = 0 to S.Histogram.bins h - 1 do
    integral := !integral +. (S.Histogram.density h i *. (8. /. 32.))
  done;
  Alcotest.(check (float 1e-9)) "density integrates to 1" 1. !integral

let prop_summary_bounds =
  QCheck.Test.make ~name:"mean within [min, max]" ~count:300
    QCheck.(array_of_size Gen.(int_range 1 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let s = S.summarize xs in
      s.S.min <= s.S.mean +. 1e-9 && s.S.mean <= s.S.max +. 1e-9)

let prop_merge_associative_count =
  QCheck.Test.make ~name:"merge preserves count and sum" ~count:200
    QCheck.(
      pair
        (array_of_size Gen.(int_range 0 30) (float_range (-100.) 100.))
        (array_of_size Gen.(int_range 0 30) (float_range (-100.) 100.)))
    (fun (a, b) ->
      let accum xs =
        let acc = S.Acc.create () in
        Array.iter (S.Acc.add acc) xs;
        acc
      in
      let merged = S.Acc.merge (accum a) (accum b) in
      S.Acc.count merged = Array.length a + Array.length b
      && Float.abs
           (S.Acc.total merged
           -. (Array.fold_left ( +. ) 0. a +. Array.fold_left ( +. ) 0. b))
         < 1e-6)

let () =
  Alcotest.run "stats"
    [
      ( "accumulator",
        [
          Alcotest.test_case "basic" `Quick test_acc_basic;
          Alcotest.test_case "empty" `Quick test_acc_empty;
          Alcotest.test_case "single" `Quick test_acc_single;
          Alcotest.test_case "matches two-pass" `Quick
            test_acc_matches_two_pass;
          Alcotest.test_case "merge" `Quick test_acc_merge;
          Alcotest.test_case "merge with empty" `Quick
            test_acc_merge_with_empty;
          Alcotest.test_case "merge both empty" `Quick
            test_acc_merge_both_empty;
          Alcotest.test_case "merge singletons" `Quick
            test_acc_merge_singletons;
          Alcotest.test_case "merge min/max" `Quick test_acc_merge_minmax;
        ] );
      ( "summary",
        [
          Alcotest.test_case "student t table" `Quick test_student_t;
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "summary n=1" `Quick test_summary_single;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram;
          Alcotest.test_case "density integrates" `Slow
            test_histogram_density_integrates;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_summary_bounds; prop_merge_associative_count ] );
    ]
