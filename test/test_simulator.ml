(* Tests for the discrete-event schedule executor. *)

module Sim = Emts_simulator
module Schedule = Emts_sched.Schedule
module LS = Emts_sched.List_scheduler

let check_float = Alcotest.(check (float 1e-9))

let schedule_of g alloc times procs = LS.run ~graph:g ~times ~alloc ~procs

let diamond_setup () =
  let g = Testutil.diamond_graph () in
  let times = Array.init 4 (Testutil.unit_speed_times g) in
  let alloc = [| 2; 1; 1; 2 |] in
  (g, schedule_of g alloc times 2)

let test_noise_models () =
  let rng = Emts_prng.create ~seed:1 () in
  check_float "none is identity" 3.5
    (Sim.Noise.apply Sim.Noise.none rng ~planned:3.5);
  let slow = Sim.Noise.uniform_slowdown ~max_factor:2. in
  for _ = 1 to 1000 do
    let v = Sim.Noise.apply slow rng ~planned:1. in
    Alcotest.(check bool) "slowdown in [1, 2]" true (1. <= v && v <= 2.)
  done;
  let log_noise = Sim.Noise.multiplicative_lognormal ~sigma:0.3 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "lognormal positive" true
      (Sim.Noise.apply log_noise rng ~planned:1. > 0.)
  done;
  Alcotest.(check bool) "bad sigma" true
    (try
       ignore (Sim.Noise.multiplicative_lognormal ~sigma:(-1.));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad factor" true
    (try
       ignore (Sim.Noise.uniform_slowdown ~max_factor:0.5);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative planned" true
    (try
       ignore (Sim.Noise.apply Sim.Noise.none rng ~planned:(-1.));
       false
     with Invalid_argument _ -> true)

let test_exact_replay () =
  let g, schedule = diamond_setup () in
  let r = Sim.execute ~graph:g ~schedule () in
  Alcotest.(check bool) "realized = planned" true
    (Schedule.entries r.Sim.realized = Schedule.entries schedule);
  check_float "slowdown 1" 1. (Sim.slowdown r)

(* Regression: the list scheduler can park several zero-duration tasks
   at one processor-availability instant that sits *after* an idle gap
   on that processor.  Replaying by (data ready, processors free) alone
   would let the unconstrained zero-duration task slide into the gap;
   the planned start must act as a release time.  Built with static
   priorities so the placement order is forced:

     p0: t1 [0,12]  t4 [12,15]
     p1: t3 [0,2]   t2 [12,12]  t0 [12,12]   (gap [2,12] before the tie)

   t0 is a source with data-ready 0; without the reservation bound it
   would realise at [2,2]. *)
let test_zero_duration_reservation () =
  let g =
    let b = Emts_ptg.Graph.Builder.create () in
    let ids = Array.init 5 (fun _ -> Emts_ptg.Graph.Builder.add_task ~flop:1. b) in
    Emts_ptg.Graph.Builder.add_edge b ~src:ids.(1) ~dst:ids.(2);
    Emts_ptg.Graph.Builder.add_edge b ~src:ids.(1) ~dst:ids.(4);
    Emts_ptg.Graph.Builder.build b
  in
  let times = [| 0.; 12.; 0.; 2.; 3. |] in
  let alloc = [| 1; 1; 1; 1; 1 |] in
  let schedule =
    LS.run_prioritized
      ~priority:(LS.Static [| 1.; 5.; 3.; 4.; 2. |])
      ~graph:g ~times ~alloc ~procs:2
  in
  let e v = Schedule.entry schedule v in
  (* The planned shape the regression depends on — fail loudly if the
     list scheduler's placement ever changes. *)
  check_float "t0 planned start" 12. (e 0).Schedule.start;
  check_float "t2 planned start" 12. (e 2).Schedule.start;
  check_float "gap end on t0's processor" 2. (e 3).Schedule.finish;
  let r = Sim.execute ~graph:g ~schedule () in
  Alcotest.(check bool) "zero-duration tie replays exactly" true
    (Schedule.entries r.Sim.realized = Schedule.entries schedule)

let test_trace_structure () =
  let g, schedule = diamond_setup () in
  let r = Sim.execute ~graph:g ~schedule () in
  Alcotest.(check int) "two events per task" 8 (List.length r.Sim.trace);
  (* chronological *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      Sim.event_time a <= Sim.event_time b && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "chronological" true (sorted r.Sim.trace);
  (* every start precedes its finish *)
  let started = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match e with
      | Sim.Start { task; _ } -> Hashtbl.replace started task ()
      | Sim.Finish { task; _ } ->
        Alcotest.(check bool) "finish after start" true
          (Hashtbl.mem started task))
    r.Sim.trace

let test_noise_changes_makespan () =
  let g, schedule = diamond_setup () in
  let r =
    Sim.execute
      ~noise:(Sim.Noise.uniform_slowdown ~max_factor:3.)
      ~rng:(Emts_prng.create ~seed:2 ())
      ~graph:g ~schedule ()
  in
  Alcotest.(check bool) "slower than planned" true (Sim.slowdown r > 1.);
  Alcotest.(check bool) "still valid" true
    (Schedule.validate r.Sim.realized ~graph:g = Ok ())

let test_deterministic_given_seed () =
  let g, schedule = diamond_setup () in
  let run () =
    (Sim.execute
       ~noise:(Sim.Noise.multiplicative_lognormal ~sigma:0.5)
       ~rng:(Emts_prng.create ~seed:3 ())
       ~graph:g ~schedule ())
      .Sim.makespan
  in
  check_float "reproducible" (run ()) (run ())

let test_mismatched_graph_rejected () =
  let g, schedule = diamond_setup () in
  ignore g;
  let other = Emts_daggen.Shapes.chain 2 in
  Alcotest.(check bool) "size mismatch" true
    (try
       ignore (Sim.execute ~graph:other ~schedule ());
       false
     with Invalid_argument _ -> true)

let test_trace_csv () =
  let g, schedule = diamond_setup () in
  let r = Sim.execute ~graph:g ~schedule () in
  let csv = Sim.trace_to_csv r in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 8 events" 9 (List.length lines);
  Alcotest.(check string) "header" "event,task,time,procs" (List.hd lines)

(* properties over random graphs and allocations *)

let arbitrary_sim_input =
  QCheck.map
    (fun (g, alloc) ->
      let platform =
        Emts_platform.make ~name:"sim16" ~processors:16 ~speed_gflops:1.
      in
      let tables =
        Emts_model.Memo.tabulate_graph Emts_model.synthetic platform g
      in
      let times = Emts_sched.Allocation.times_of_tables alloc ~tables in
      (g, LS.run ~graph:g ~times ~alloc ~procs:16))
    (Testutil.arbitrary_dag_alloc ~procs:16 ())

let prop_exact_replay =
  QCheck.Test.make ~name:"noise-free execution reproduces the schedule"
    ~count:150 arbitrary_sim_input
    (fun (g, schedule) ->
      let r = Sim.execute ~graph:g ~schedule () in
      Schedule.entries r.Sim.realized = Schedule.entries schedule)

let prop_noisy_execution_valid =
  QCheck.Test.make ~name:"noisy executions stay valid" ~count:100
    arbitrary_sim_input
    (fun (g, schedule) ->
      let r =
        Sim.execute
          ~noise:(Sim.Noise.multiplicative_lognormal ~sigma:0.4)
          ~rng:(Emts_prng.create ~seed:7 ())
          ~graph:g ~schedule ()
      in
      Schedule.validate r.Sim.realized ~graph:g = Ok ())

let prop_slowdown_bounded =
  QCheck.Test.make
    ~name:"uniform slowdown(f): makespan within [planned, f * planned]"
    ~count:100 arbitrary_sim_input
    (fun (g, schedule) ->
      let f = 2.5 in
      let r =
        Sim.execute
          ~noise:(Sim.Noise.uniform_slowdown ~max_factor:f)
          ~rng:(Emts_prng.create ~seed:8 ())
          ~graph:g ~schedule ()
      in
      r.Sim.makespan >= r.Sim.planned_makespan -. 1e-9
      && r.Sim.makespan <= (f *. r.Sim.planned_makespan) +. 1e-9)

let () =
  Alcotest.run "simulator"
    [
      ( "noise",
        [ Alcotest.test_case "models" `Quick test_noise_models ] );
      ( "execution",
        [
          Alcotest.test_case "exact replay" `Quick test_exact_replay;
          Alcotest.test_case "zero-duration reservation" `Quick
            test_zero_duration_reservation;
          Alcotest.test_case "trace structure" `Quick test_trace_structure;
          Alcotest.test_case "noise changes makespan" `Quick
            test_noise_changes_makespan;
          Alcotest.test_case "deterministic" `Quick
            test_deterministic_given_seed;
          Alcotest.test_case "graph mismatch" `Quick
            test_mismatched_graph_rejected;
          Alcotest.test_case "trace csv" `Quick test_trace_csv;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_exact_replay; prop_noisy_execution_valid; prop_slowdown_bounded ] );
    ]
