(* Tests for the allocation heuristics: CPA, HCPA, MCPA, Delta-critical,
   the registry, and the shared growth loop. *)

module A = Emts_alloc
module Common = Emts_alloc.Common
module Graph = Emts_ptg.Graph

let chti = Emts_platform.chti

let ctx_of ?(model = Emts_model.amdahl) ?(platform = chti) g =
  Common.make_ctx ~model ~platform ~graph:g

(* Chain of perfectly parallel tasks: every task is always on the
   critical path and spans shrink by 1/p, so CPA must push every
   allocation to the full cluster (T_CP = T_A exactly there). *)
let test_cpa_chain_alpha0 () =
  let g =
    Graph.map_tasks
      (fun t -> Emts_ptg.Task.make ~id:t.Emts_ptg.Task.id ~flop:4.3e9 ())
      (Emts_daggen.Shapes.chain 3)
  in
  let alloc = A.Cpa.allocate (ctx_of g) in
  Alcotest.(check (array int)) "all tasks get P" [| 20; 20; 20 |] alloc

let test_cpa_stops_at_ta () =
  (* Wide level of identical tasks: T_A ~ V*T1/(P) stays put while the
     (single-task) critical path shrinks; CPA stops growing once
     T_CP <= T_A, so allocations stay small. *)
  let g =
    Graph.map_tasks
      (fun t -> Emts_ptg.Task.make ~id:t.Emts_ptg.Task.id ~flop:4.3e9 ())
      (Emts_daggen.Shapes.independent 20)
  in
  let alloc = A.Cpa.allocate (ctx_of g) in
  (* 20 unit tasks on 20 procs: T_A = 1 = T_CP at all-ones already. *)
  Alcotest.(check (array int)) "no growth needed" (Array.make 20 1) alloc

let test_growth_loop_respects_eligibility () =
  let g =
    Graph.map_tasks
      (fun t -> Emts_ptg.Task.make ~id:t.Emts_ptg.Task.id ~flop:4.3e9 ())
      (Emts_daggen.Shapes.chain 2)
  in
  let alloc =
    Common.growth_loop ~gain:Common.Efficiency
      ~eligible:(fun alloc v -> v = 0 && alloc.(v) < 5)
      (ctx_of g)
  in
  Alcotest.(check int) "capped task" 5 alloc.(0);
  Alcotest.(check int) "ineligible task" 1 alloc.(1)

let test_gain_value () =
  let g =
    Graph.map_tasks
      (fun t ->
        Emts_ptg.Task.make ~id:t.Emts_ptg.Task.id ~flop:4.3e9 ~alpha:0.5 ())
      (Emts_daggen.Shapes.independent 1)
  in
  let ctx = ctx_of g in
  let alloc = [| 1 |] in
  (* T(1) = 1, T(2) = 0.75: absolute gain 0.25, efficiency 1 - 0.375 *)
  Alcotest.(check (float 1e-9)) "absolute" 0.25
    (Common.gain_value ctx alloc Common.Absolute 0);
  Alcotest.(check (float 1e-9)) "efficiency" 0.625
    (Common.gain_value ctx alloc Common.Efficiency 0);
  (* at the cluster size no further gain exists *)
  Alcotest.(check bool) "full allocation" true
    (Common.gain_value ctx [| 20 |] Common.Absolute 0 = neg_infinity)

let test_hcpa_differs_from_cpa () =
  (* Two-task chain: A has tiny absolute but large efficiency gain; B the
     opposite, so the first growth step diverges and so do the results. *)
  let b = Graph.Builder.create () in
  let a = Graph.Builder.add_task ~name:"A" ~flop:(100. *. 4.3e9) ~alpha:0.9 b in
  let c = Graph.Builder.add_task ~name:"B" ~flop:(60. *. 4.3e9) ~alpha:0. b in
  Graph.Builder.add_edge b ~src:a ~dst:c;
  let g = Graph.Builder.build b in
  let ctx = ctx_of g in
  let one = [| 1; 1 |] in
  Alcotest.(check bool) "efficiency prefers A" true
    (Common.gain_value ctx one Common.Efficiency 0
    > Common.gain_value ctx one Common.Efficiency 1);
  Alcotest.(check bool) "absolute prefers B" true
    (Common.gain_value ctx one Common.Absolute 1
    > Common.gain_value ctx one Common.Absolute 0)

(* CPR grows by actual makespan reduction, so its result can never be
   worse than the all-ones schedule, and each accepted step strictly
   improved the schedule. *)
let cpr_makespan ctx alloc =
  let times = Common.times ctx alloc in
  Emts_sched.List_scheduler.makespan ~graph:ctx.Common.graph ~times ~alloc
    ~procs:ctx.Common.procs

let test_cpr_improves_chain () =
  let g =
    Graph.map_tasks
      (fun t -> Emts_ptg.Task.make ~id:t.Emts_ptg.Task.id ~flop:4.3e9 ())
      (Emts_daggen.Shapes.chain 4)
  in
  let ctx = ctx_of g in
  let alloc = A.Cpr.allocate ctx in
  (* perfectly parallel chain: CPR drives everything to the full cluster *)
  Alcotest.(check (array int)) "chain fully widened" (Array.make 4 20) alloc

let test_cpr_never_worse_than_seq () =
  let rng = Emts_prng.create ~seed:31 () in
  for _ = 1 to 10 do
    let g =
      Testutil.costed_daggen rng ~n:20 ~width:0.6
    in
    let ctx = ctx_of ~model:Emts_model.synthetic g in
    let seq = cpr_makespan ctx (Array.make 20 1) in
    let cpr = cpr_makespan ctx (A.Cpr.allocate ctx) in
    Alcotest.(check bool) "cpr <= seq" true (cpr <= seq +. 1e-9)
  done

let test_cpr_beats_cpa_usually () =
  (* CPR optimises the real makespan, CPA an analytic proxy: under a
     MONOTONE model CPR should win or tie on a clear majority.  (Under
     Model 2 CPR is greedier than CPA and gets trapped: a single +1
     processor step usually *increases* a task's time, so it stops at
     once — exactly the pathology that motivates EMTS's multi-processor
     mutation steps.) *)
  let rng = Emts_prng.create ~seed:32 () in
  let wins = ref 0 and n = 10 in
  for _ = 1 to n do
    let g =
      Testutil.costed_daggen rng ~n:25 ~width:0.6
    in
    let ctx = ctx_of ~model:Emts_model.amdahl g in
    let cpa = cpr_makespan ctx (A.Cpa.allocate ctx) in
    let cpr = cpr_makespan ctx (A.Cpr.allocate ctx) in
    if cpr <= cpa +. 1e-9 then incr wins
  done;
  Alcotest.(check bool)
    (Printf.sprintf "CPR at least ties CPA on %d/%d (Model 1)" !wins n)
    true
    (!wins >= 7)

let test_mcpa_level_budget () =
  (* A single wide level cannot be allocated more than P in total. *)
  let g =
    Graph.map_tasks
      (fun t ->
        Emts_ptg.Task.make ~id:t.Emts_ptg.Task.id ~flop:(10. *. 4.3e9) ())
      (Emts_daggen.Shapes.independent 8)
  in
  let alloc = A.Mcpa.allocate (ctx_of g) in
  let total = Array.fold_left ( + ) 0 alloc in
  Alcotest.(check bool) "level total within P" true (total <= 20)

let test_mcpa_bounds_all_levels_random () =
  let rng = Emts_prng.create ~seed:11 () in
  for _ = 1 to 20 do
    let g =
      Testutil.costed_daggen rng ~n:40 ~width:0.7 ~density:0.4
    in
    let ctx = ctx_of ~model:Emts_model.synthetic g in
    let alloc = A.Mcpa.allocate ctx in
    let level = Graph.precedence_level g in
    let totals = Array.make (Graph.level_count g) 0 in
    Array.iteri (fun v s -> totals.(level.(v)) <- totals.(level.(v)) + s) alloc;
    Array.iteri
      (fun lv total ->
        (* the budget may be reached, never exceeded... except where the
           level has more than P tasks, which cannot happen here *)
        Alcotest.(check bool)
          (Printf.sprintf "level %d within budget" lv)
          true (total <= 20))
      totals
  done

let test_delta_critical_diamond () =
  (* Diamond bl (sequential) = [80;60;70;40]:
     level 0: {0} critical -> P; level 1: max 70, cutoff 63 -> {2}
     critical (60 < 63), so alloc 2 = P and alloc 1 = 1; level 2: {3}. *)
  let g =
    Graph.map_tasks
      (fun t ->
        Emts_ptg.Task.make ~id:t.Emts_ptg.Task.id
          ~flop:((Testutil.unit_speed_times (Testutil.diamond_graph ()))
                   t.Emts_ptg.Task.id
                *. 4.3e9)
          ())
      (Testutil.diamond_graph ())
  in
  let alloc = A.Delta_critical.allocate ~delta:0.9 (ctx_of g) in
  Alcotest.(check (array int)) "allocation" [| 20; 1; 20; 20 |] alloc

let test_delta_zero_shares_everything () =
  let g =
    Graph.map_tasks
      (fun t -> Emts_ptg.Task.make ~id:t.Emts_ptg.Task.id ~flop:4.3e9 ())
      (Emts_daggen.Shapes.independent 4)
  in
  (* all 4 tasks critical at delta=0 -> 20/4 = 5 procs each *)
  Alcotest.(check (array int)) "even share" [| 5; 5; 5; 5 |]
    (A.Delta_critical.allocate ~delta:0. (ctx_of g));
  Alcotest.(check bool) "bad delta rejected" true
    (try
       ignore (A.Delta_critical.allocate ~delta:1.5 (ctx_of g));
       false
     with Invalid_argument _ -> true)

let test_sequential_baseline () =
  let g = Emts_daggen.Shapes.diamond 2 in
  Alcotest.(check (array int)) "all ones" (Array.make 6 1)
    (A.Sequential.allocate (ctx_of g))

let test_registry () =
  Alcotest.(check int) "six heuristics" 6 (List.length A.all);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " found") true (A.find name <> None))
    [ "seq"; "CPA"; "hcpa"; "McPa"; "cpr"; "DELTACP" ];
  Alcotest.(check bool) "unknown" true (A.find "magic" = None)

let test_allocate_convenience () =
  let g = Emts_daggen.Shapes.chain 2 in
  match A.find "mcpa" with
  | None -> Alcotest.fail "mcpa missing"
  | Some h ->
    let alloc =
      A.allocate h ~model:Emts_model.amdahl ~platform:chti ~graph:g
    in
    Alcotest.(check int) "length" 2 (Array.length alloc)

(* --- lower bounds --- *)

let test_bounds_single_task () =
  (* one task, alpha=0, T1 = 10 s on chti: best time 0.5 s at p=20,
     best area = sequential area 10 (monotone model). *)
  let g =
    Graph.map_tasks
      (fun t ->
        Emts_ptg.Task.make ~id:t.Emts_ptg.Task.id ~flop:(10. *. 4.3e9) ())
      (Emts_daggen.Shapes.independent 1)
  in
  let ctx = ctx_of g in
  Alcotest.(check (float 1e-9)) "best_time" 0.5 (A.Bounds.best_time ctx 0);
  Alcotest.(check (float 1e-9)) "best_area" 10. (A.Bounds.best_area ctx 0);
  Alcotest.(check (float 1e-9)) "cp bound" 0.5
    (A.Bounds.critical_path_bound ctx);
  Alcotest.(check (float 1e-9)) "area bound" 0.5 (A.Bounds.area_bound ctx);
  Alcotest.(check (float 1e-9)) "lower bound" 0.5 (A.Bounds.lower_bound ctx)

let test_bounds_area_dominates_when_wide () =
  (* 40 sequential-ish tasks on 20 procs: area bound = 40*T1/20 = 2*T1
     exceeds the single-task cp bound. *)
  let g =
    Graph.map_tasks
      (fun t ->
        Emts_ptg.Task.make ~id:t.Emts_ptg.Task.id ~flop:4.3e9 ~alpha:1. ())
      (Emts_daggen.Shapes.independent 40)
  in
  let ctx = ctx_of g in
  Alcotest.(check (float 1e-9)) "area bound" 2. (A.Bounds.area_bound ctx);
  Alcotest.(check (float 1e-9)) "cp bound" 1.
    (A.Bounds.critical_path_bound ctx);
  Alcotest.(check (float 1e-9)) "lb = area" 2. (A.Bounds.lower_bound ctx)

let prop_bounds_below_any_schedule =
  QCheck.Test.make
    ~name:"lower bound <= makespan of every heuristic's schedule" ~count:60
    (Testutil.arbitrary_dag ~max_n:20 ())
    (fun g ->
      let ctx = ctx_of ~model:Emts_model.synthetic g in
      let lb = A.Bounds.lower_bound ctx in
      List.for_all
        (fun (h : A.heuristic) ->
          let alloc = h.allocate ctx in
          let m = cpr_makespan ctx alloc in
          lb <= m +. 1e-9 && A.Bounds.gap ctx ~makespan:m >= 1. -. 1e-9)
        A.all)

(* Every heuristic always returns a valid allocation. *)
let prop_heuristics_valid =
  QCheck.Test.make ~name:"heuristic allocations validate" ~count:60
    (Testutil.arbitrary_dag ~max_n:20 ())
    (fun g ->
      let ctx = ctx_of ~model:Emts_model.synthetic g in
      List.for_all
        (fun (h : A.heuristic) ->
          Emts_sched.Allocation.validate (h.allocate ctx) ~graph:g ~procs:20
          = Ok ())
        A.all)

let prop_heuristics_deterministic =
  QCheck.Test.make ~name:"heuristics are deterministic" ~count:40
    (Testutil.arbitrary_dag ~max_n:15 ())
    (fun g ->
      let ctx = ctx_of ~model:Emts_model.synthetic g in
      List.for_all
        (fun (h : A.heuristic) -> h.allocate ctx = h.allocate ctx)
        A.all)

let () =
  Alcotest.run "alloc"
    [
      ( "cpa",
        [
          Alcotest.test_case "chain alpha=0 fills cluster" `Quick
            test_cpa_chain_alpha0;
          Alcotest.test_case "stops at T_A" `Quick test_cpa_stops_at_ta;
          Alcotest.test_case "eligibility respected" `Quick
            test_growth_loop_respects_eligibility;
          Alcotest.test_case "gain values" `Quick test_gain_value;
        ] );
      ( "hcpa",
        [ Alcotest.test_case "criterion differs from CPA" `Quick test_hcpa_differs_from_cpa ] );
      ( "cpr",
        [
          Alcotest.test_case "chain fully widened" `Quick
            test_cpr_improves_chain;
          Alcotest.test_case "never worse than SEQ" `Quick
            test_cpr_never_worse_than_seq;
          Alcotest.test_case "usually beats CPA" `Slow
            test_cpr_beats_cpa_usually;
        ] );
      ( "mcpa",
        [
          Alcotest.test_case "level budget" `Quick test_mcpa_level_budget;
          Alcotest.test_case "budget on random PTGs" `Quick
            test_mcpa_bounds_all_levels_random;
        ] );
      ( "delta-critical",
        [
          Alcotest.test_case "diamond" `Quick test_delta_critical_diamond;
          Alcotest.test_case "delta=0" `Quick test_delta_zero_shares_everything;
        ] );
      ( "registry",
        [
          Alcotest.test_case "sequential" `Quick test_sequential_baseline;
          Alcotest.test_case "lookup" `Quick test_registry;
          Alcotest.test_case "allocate convenience" `Quick
            test_allocate_convenience;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "single task" `Quick test_bounds_single_task;
          Alcotest.test_case "area dominates" `Quick
            test_bounds_area_dominates_when_wide;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_heuristics_valid;
            prop_heuristics_deterministic;
            prop_bounds_below_any_schedule;
          ] );
    ]
