(* Tests for Emts_prng: determinism, ranges, and distribution sanity. *)

module P = Emts_prng

let check_float = Alcotest.(check (float 1e-9))

let test_determinism () =
  let a = P.create ~seed:123 () and b = P.create ~seed:123 () in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (P.bits64 a) (P.bits64 b)
  done

let test_seed_changes_stream () =
  let a = P.create ~seed:1 () and b = P.create ~seed:2 () in
  let same = ref 0 in
  for _ = 1 to 64 do
    if P.bits64 a = P.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds differ" true (!same < 4)

let test_copy_independent () =
  let a = P.create ~seed:7 () in
  ignore (P.bits64 a);
  let b = P.copy a in
  let expected = P.bits64 b in
  Alcotest.(check int64) "copy replays the future" expected (P.bits64 a);
  (* advancing the copy does not affect the original *)
  ignore (P.bits64 b);
  let c = P.copy a in
  Alcotest.(check int64) "original unaffected" (P.bits64 c) (P.bits64 a)

let test_split_decorrelates () =
  let a = P.create ~seed:9 () in
  let s1 = P.split a and s2 = P.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if P.bits64 s1 = P.bits64 s2 then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same = 0)

let test_state_round_trip () =
  let a = P.create ~seed:42 () in
  (* Restore mid-stream: drain some draws, snapshot, then compare the
     next 1000 draws of the original and the restored generator. *)
  for _ = 1 to 257 do
    ignore (P.bits64 a)
  done;
  let snap = P.state a in
  let b = P.of_state snap in
  for i = 1 to 1000 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d identical" i)
      (P.bits64 a) (P.bits64 b)
  done;
  (* Snapshotting must not advance or mutate the generator. *)
  let c = P.of_state snap in
  for _ = 1 to 1001 do
    ignore (P.bits64 c)
  done;
  Alcotest.(check bool)
    "snapshot array is a copy" true
    (P.state (P.of_state snap) = snap)

let test_state_validation () =
  (match P.of_state [| 1L; 2L |] with
  | _ -> Alcotest.fail "short state accepted"
  | exception Invalid_argument _ -> ());
  match P.of_state [| 0L; 0L; 0L; 0L |] with
  | _ -> Alcotest.fail "all-zero state accepted"
  | exception Invalid_argument _ -> ()

let prop_state_round_trip =
  QCheck.Test.make ~name:"state/of_state round-trips mid-stream" ~count:100
    QCheck.(pair small_int (int_range 0 500))
    (fun (seed, drain) ->
      let a = P.create ~seed () in
      for _ = 1 to drain do
        ignore (P.bits64 a)
      done;
      let b = P.of_state (P.state a) in
      let ok = ref true in
      for _ = 1 to 1000 do
        if P.bits64 a <> P.bits64 b then ok := false
      done;
      !ok)

let test_seed_of_label () =
  Alcotest.(check bool)
    "stable" true
    (P.seed_of_label "fig4/fft/0" = P.seed_of_label "fig4/fft/0");
  Alcotest.(check bool)
    "distinct labels, distinct seeds" true
    (P.seed_of_label "a" <> P.seed_of_label "b");
  Alcotest.(check bool) "non-negative" true (P.seed_of_label "anything" >= 0)

let test_int_bounds () =
  let rng = P.create ~seed:3 () in
  for _ = 1 to 10_000 do
    let v = P.int rng 7 in
    Alcotest.(check bool) "0 <= v < 7" true (0 <= v && v < 7)
  done;
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Emts_prng.int: bound must be positive") (fun () ->
      ignore (P.int rng 0))

let test_int_uniform () =
  let rng = P.create ~seed:4 () in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = P.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d within 5%%" i)
        true
        (abs (c - expected) < expected / 20))
    counts

let test_int_in () =
  let rng = P.create ~seed:5 () in
  for _ = 1 to 1000 do
    let v = P.int_in rng (-3) 3 in
    Alcotest.(check bool) "in [-3,3]" true (-3 <= v && v <= 3)
  done;
  Alcotest.(check int) "degenerate range" 5 (P.int_in rng 5 5);
  Alcotest.check_raises "lo > hi rejected"
    (Invalid_argument "Emts_prng.int_in: lo > hi") (fun () ->
      ignore (P.int_in rng 2 1))

let test_float_bounds () =
  let rng = P.create ~seed:6 () in
  for _ = 1 to 10_000 do
    let v = P.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (0. <= v && v < 2.5)
  done

let test_float_mean () =
  let rng = P.create ~seed:7 () in
  let acc = ref 0. in
  let n = 100_000 in
  for _ = 1 to n do
    acc := !acc +. P.float rng 1.
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_bernoulli () =
  let rng = P.create ~seed:8 () in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if P.bernoulli rng ~p:0.2 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p=0.2 within 1%" true (Float.abs (rate -. 0.2) < 0.01);
  Alcotest.(check bool) "p=0 never" false (P.bernoulli rng ~p:0.);
  Alcotest.(check bool) "p=1 always" true (P.bernoulli rng ~p:1.);
  Alcotest.(check bool) "p>1 clamps" true (P.bernoulli rng ~p:2.)

let test_normal_moments () =
  let rng = P.create ~seed:9 () in
  let acc = Emts_stats.Acc.create () in
  for _ = 1 to 200_000 do
    Emts_stats.Acc.add acc (P.normal rng ~mu:3. ~sigma:2.)
  done;
  Alcotest.(check bool)
    "mean near 3" true
    (Float.abs (Emts_stats.Acc.mean acc -. 3.) < 0.05);
  Alcotest.(check bool)
    "stddev near 2" true
    (Float.abs (Emts_stats.Acc.stddev acc -. 2.) < 0.05);
  check_float "sigma=0 returns mu" 5. (P.normal rng ~mu:5. ~sigma:0.)

let test_log_uniform () =
  let rng = P.create ~seed:10 () in
  for _ = 1 to 10_000 do
    let v = P.log_uniform rng ~lo:64. ~hi:512. in
    Alcotest.(check bool) "in [64, 512]" true (64. <= v && v <= 512.)
  done

let test_exponential () =
  let rng = P.create ~seed:11 () in
  let acc = Emts_stats.Acc.create () in
  for _ = 1 to 100_000 do
    let v = P.exponential rng ~lambda:2. in
    Alcotest.(check bool) "non-negative" true (v >= 0.);
    Emts_stats.Acc.add acc v
  done;
  Alcotest.(check bool)
    "mean near 1/lambda" true
    (Float.abs (Emts_stats.Acc.mean acc -. 0.5) < 0.01)

let test_shuffle_is_permutation () =
  let rng = P.create ~seed:12 () in
  let a = Array.init 50 Fun.id in
  P.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = P.create ~seed:13 () in
  for _ = 1 to 200 do
    let sample = P.sample_without_replacement rng ~k:10 ~n:30 in
    Alcotest.(check int) "k elements" 10 (Array.length sample);
    let sorted = Array.copy sample in
    Array.sort compare sorted;
    for i = 1 to 9 do
      Alcotest.(check bool) "distinct" true (sorted.(i - 1) < sorted.(i))
    done;
    Array.iter
      (fun v -> Alcotest.(check bool) "in range" true (0 <= v && v < 30))
      sample
  done;
  Alcotest.(check (array int)) "k=0 empty" [||]
    (P.sample_without_replacement rng ~k:0 ~n:5);
  let all = P.sample_without_replacement rng ~k:5 ~n:5 in
  let sorted = Array.copy all in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "k=n is a permutation" [| 0; 1; 2; 3; 4 |] sorted

let test_choose () =
  let rng = P.create ~seed:14 () in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.mem (P.choose rng a) a)
  done;
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Emts_prng.choose: empty array") (fun () ->
      ignore (P.choose rng [||]))

(* qcheck properties *)

let prop_int_in_range =
  QCheck.Test.make ~name:"int always below bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = P.create ~seed () in
      let v = P.int rng bound in
      0 <= v && v < bound)

let prop_float_in =
  QCheck.Test.make ~name:"float_in stays in [lo, hi)" ~count:500
    QCheck.(triple small_int (float_range (-100.) 100.) (float_range 0.001 50.))
    (fun (seed, lo, span) ->
      let rng = P.create ~seed () in
      let hi = lo +. span in
      let v = P.float_in rng lo hi in
      lo <= v && v < hi)

let prop_sample_distinct =
  QCheck.Test.make ~name:"sample_without_replacement distinct" ~count:300
    QCheck.(pair small_int (pair (int_range 0 20) (int_range 20 60)))
    (fun (seed, (k, n)) ->
      let rng = P.create ~seed () in
      let sample = P.sample_without_replacement rng ~k ~n in
      let module IS = Set.Make (Int) in
      IS.cardinal (IS.of_list (Array.to_list sample)) = k)

let () =
  Alcotest.run "prng"
    [
      ( "stream",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed changes stream" `Quick
            test_seed_changes_stream;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split_decorrelates;
          Alcotest.test_case "state round-trip" `Quick test_state_round_trip;
          Alcotest.test_case "state validation" `Quick test_state_validation;
          Alcotest.test_case "seed_of_label" `Quick test_seed_of_label;
        ] );
      ( "draws",
        [
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int uniform" `Slow test_int_uniform;
          Alcotest.test_case "int_in" `Quick test_int_in;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "float mean" `Slow test_float_mean;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "bernoulli" `Slow test_bernoulli;
          Alcotest.test_case "normal moments" `Slow test_normal_moments;
          Alcotest.test_case "log_uniform" `Quick test_log_uniform;
          Alcotest.test_case "exponential" `Slow test_exponential;
          Alcotest.test_case "shuffle" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_sample_without_replacement;
          Alcotest.test_case "choose" `Quick test_choose;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_int_in_range;
            prop_float_in;
            prop_sample_distinct;
            prop_state_round_trip;
          ] );
    ]
