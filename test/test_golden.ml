(* Golden-file tests for the textual renderers.

   Gantt charts, SVG charts and CSV exports are consumed outside the
   process (reports, dashboards, the paper's Figure 6) — their output
   must be a pure, byte-stable function of the schedule, across runs
   and across refactors.  Each test renders a deterministic schedule
   and compares against a checked-in .expected file byte for byte.

   To regenerate after an intentional renderer change:

     EMTS_GOLDEN_UPDATE=1 dune runtest test --force

   which rewrites the files in test/golden/ (the dune stanza copies
   them into the sandbox; the update path writes through to the source
   tree). *)

module Schedule = Emts_sched.Schedule
module Graph = Emts_ptg.Graph

let update_mode = Sys.getenv_opt "EMTS_GOLDEN_UPDATE" <> None

(* When updating, write through to the source tree, not the sandbox
   copy.  dune runs tests from the stanza directory, so the source is
   reachable via the project root. *)
let source_dir =
  match Sys.getenv_opt "DUNE_SOURCEROOT" with
  | Some root -> Filename.concat (Filename.concat root "test") "golden"
  | None -> "golden"

let check_golden name actual =
  let sandbox_path = Filename.concat "golden" (name ^ ".expected") in
  if update_mode then begin
    let path = Filename.concat source_dir (name ^ ".expected") in
    Out_channel.with_open_bin path (fun oc -> output_string oc actual);
    Printf.printf "updated %s\n" path
  end
  else if not (Sys.file_exists sandbox_path) then
    Alcotest.fail
      (Printf.sprintf
         "missing golden file %s — run with EMTS_GOLDEN_UPDATE=1 to create it"
         sandbox_path)
  else
    let expected =
      In_channel.with_open_bin sandbox_path In_channel.input_all
    in
    if String.equal expected actual then ()
    else
      Alcotest.fail
        (Printf.sprintf
           "%s: output differs from golden file (%d bytes vs %d expected) — \
            if the change is intentional, regenerate with \
            EMTS_GOLDEN_UPDATE=1"
           name (String.length actual) (String.length expected))

(* Two fixed schedules: the documented diamond, and a mid-sized daggen
   graph with a seeded random allocation — enough rows to exercise
   layout, scaling and processor-set formatting. *)

let diamond_schedule () =
  let g = Testutil.diamond_graph () in
  let times = Array.init 4 (Testutil.unit_speed_times g) in
  Emts_sched.List_scheduler.run ~graph:g ~times ~alloc:[| 2; 1; 1; 2 |]
    ~procs:2

let daggen_schedule () =
  let rng = Emts_prng.create ~seed:2026 () in
  let g = Testutil.costed_daggen rng ~n:12 in
  let alloc = Emts_check.Gen.random_valid_alloc rng g ~procs:4 in
  let times =
    Testutil.times_for ~model:Emts_model.synthetic
      ~platform:(Emts_platform.make ~name:"golden" ~processors:4
                   ~speed_gflops:1.)
      g alloc
  in
  Emts_sched.List_scheduler.run ~graph:g ~times ~alloc ~procs:4

let render_twice label render =
  let a = render () in
  let b = render () in
  Alcotest.(check string) (label ^ " is deterministic in-process") a b;
  a

let test_csv () =
  let d = diamond_schedule () and g = daggen_schedule () in
  check_golden "diamond.csv"
    (render_twice "diamond csv" (fun () -> Schedule.to_csv d));
  check_golden "daggen.csv"
    (render_twice "daggen csv" (fun () -> Schedule.to_csv g))

let test_gantt () =
  let d = diamond_schedule () and g = daggen_schedule () in
  check_golden "diamond.gantt"
    (render_twice "diamond gantt" (fun () ->
         Emts_sched.Gantt.render ~width:72 d));
  check_golden "daggen.gantt"
    (render_twice "daggen gantt" (fun () ->
         Emts_sched.Gantt.render ~width:72 g));
  check_golden "pair.gantt"
    (render_twice "gantt pair" (fun () ->
         Emts_sched.Gantt.render_pair ~width:100 ~left:("diamond", d)
           ~right:("daggen", g) ()))

let test_svg () =
  let d = diamond_schedule () and g = daggen_schedule () in
  check_golden "diamond.svg"
    (render_twice "diamond svg" (fun () ->
         Emts_sched.Svg.render ~width_px:640 ~title:"diamond" d));
  check_golden "pair.svg"
    (render_twice "svg pair" (fun () ->
         Emts_sched.Svg.render_pair ~width_px:960 ~left:("diamond", d)
           ~right:("daggen", g) ()))

(* Online arrival trace: a pinned 3-DAG sequence against the online
   controller.  The commitment log is the contract the wire protocol,
   the fuzz oracle and the re-planner all share — one byte of drift in
   commit order, times or processor sets must fail loudly here.  The
   DAGs are built explicitly (not via daggen) so the golden file never
   moves under generator changes. *)

(* Costs are in GFLOP-scale so single-processor durations land in
   seconds against the 1 GFLOP/s golden platform — arrival times and
   task durations then overlap, which is the regime worth pinning. *)
let gf = 1e9

let online_diamond () =
  let b = Graph.Builder.create () in
  let t0 = Graph.Builder.add_task ~flop:(10. *. gf) b in
  let t1 = Graph.Builder.add_task ~flop:(20. *. gf) b in
  let t2 = Graph.Builder.add_task ~flop:(30. *. gf) b in
  let t3 = Graph.Builder.add_task ~flop:(40. *. gf) b in
  List.iter
    (fun (src, dst) -> Graph.Builder.add_edge b ~src ~dst)
    [ (t0, t1); (t0, t2); (t1, t3); (t2, t3) ];
  Graph.Builder.build b

let online_chain () =
  let b = Graph.Builder.create () in
  let ids =
    Array.init 3 (fun i ->
        Graph.Builder.add_task ~flop:((15. +. (5. *. float_of_int i)) *. gf) b)
  in
  Graph.Builder.add_edge b ~src:ids.(0) ~dst:ids.(1);
  Graph.Builder.add_edge b ~src:ids.(1) ~dst:ids.(2);
  Graph.Builder.build b

let online_fork () =
  let b = Graph.Builder.create () in
  let root = Graph.Builder.add_task ~flop:(10. *. gf) b in
  for i = 1 to 3 do
    let leaf = Graph.Builder.add_task ~flop:(10. *. float_of_int i *. gf) b in
    Graph.Builder.add_edge b ~src:root ~dst:leaf
  done;
  Graph.Builder.build b

let online_commitment_log ~replanner () =
  let module Online = Emts_serve.Online in
  let cfg =
    Online.config ~replanner ~seed:2026
      ~platform:
        (Emts_platform.make ~name:"golden" ~processors:4 ~speed_gflops:1.)
      ~model:Emts_model.amdahl ()
  in
  let t = Online.create cfg in
  let submit graph at =
    match Online.submit t ~graph ~at with
    | Ok _ -> ()
    | Error m -> Alcotest.fail ("online submit: " ^ m)
  in
  submit (online_diamond ()) 0.;
  submit (online_chain ()) 12.;
  submit (online_fork ()) 30.;
  (match Online.advance t with
  | Ok r when r.Online.complete -> ()
  | Ok _ -> Alcotest.fail "online trace did not complete"
  | Error m -> Alcotest.fail ("online advance: " ^ m));
  String.concat "\n" (List.map Online.pp_committed (Online.commitments t))
  ^ "\n"

let test_online_commitments () =
  let module Online = Emts_serve.Online in
  check_golden "online_commitments.baseline"
    (render_twice "online baseline log" (online_commitment_log ~replanner:Online.Baseline));
  check_golden "online_commitments.emts"
    (render_twice "online emts log"
       (online_commitment_log
          ~replanner:(Online.Emts { mu = 3; lambda = 8; generations = 3 })))

let () =
  Alcotest.run "golden"
    [
      ( "renderers",
        [
          Alcotest.test_case "csv" `Quick test_csv;
          Alcotest.test_case "gantt" `Quick test_gantt;
          Alcotest.test_case "svg" `Quick test_svg;
        ] );
      ( "online",
        [
          Alcotest.test_case "arrival-trace commitments" `Quick
            test_online_commitments;
        ] );
    ]
