(* Integration tests: the full pipeline (generate -> serialise ->
   allocate -> schedule -> validate -> bound -> execute) across the
   algorithm x model x platform grid.  Each check crosses at least two
   library boundaries. *)

module Graph = Emts_ptg.Graph

let models = [ Emts_model.amdahl; Emts_model.synthetic ]
let platforms = [ Emts_platform.chti; Emts_platform.grelon ]

let graphs =
  lazy
    (let rng = Emts_prng.create ~seed:2011 () in
     [
       ("fft8", Emts_daggen.Costs.assign rng (Emts_daggen.Fft.generate ~points:8));
       ("strassen", Emts_daggen.Costs.assign rng (Emts_daggen.Strassen.generate ()));
       ( "irregular",
         Testutil.costed_daggen rng ~n:40 ~width:0.6 ~regularity:0.4 ~jump:2
       );
     ])

let quick_emts =
  { Emts.Algorithm.emts5 with Emts.Algorithm.generations = 3; lambda = 8; mu = 3 }

(* every heuristic, every model, every platform: the whole two-step
   pipeline holds its invariants *)
let test_heuristic_grid () =
  List.iter
    (fun (gname, graph) ->
      List.iter
        (fun model ->
          List.iter
            (fun platform ->
              let ctx = Emts_alloc.Common.make_ctx ~model ~platform ~graph in
              let lb = Emts_alloc.Bounds.lower_bound ctx in
              List.iter
                (fun (h : Emts_alloc.heuristic) ->
                  let label =
                    Printf.sprintf "%s/%s/%s/%s" gname model.Emts_model.name
                      platform.Emts_platform.name h.name
                  in
                  let alloc = h.allocate ctx in
                  Alcotest.(check bool) (label ^ ": alloc valid") true
                    (Emts_sched.Allocation.validate alloc ~graph
                       ~procs:platform.Emts_platform.processors
                    = Ok ());
                  let schedule = Emts.Algorithm.schedule_allocation ~ctx alloc in
                  Alcotest.(check bool) (label ^ ": schedule valid") true
                    (Emts_sched.Schedule.validate ~alloc schedule ~graph
                    = Ok ());
                  let m = Emts_sched.Schedule.makespan schedule in
                  Alcotest.(check bool) (label ^ ": above lower bound") true
                    (m >= lb -. 1e-9))
                Emts_alloc.all)
            platforms)
        models)
    (Lazy.force graphs)

(* EMTS end to end on the same grid, plus simulator replay *)
let test_emts_grid () =
  List.iter
    (fun (gname, graph) ->
      List.iter
        (fun model ->
          let platform = Emts_platform.chti in
          let label = Printf.sprintf "%s/%s" gname model.Emts_model.name in
          let r =
            Emts.Algorithm.run
              ~rng:(Emts_prng.create ~seed:5 ())
              ~config:quick_emts ~model ~platform ~graph ()
          in
          Alcotest.(check bool) (label ^ ": beats every seed") true
            (List.for_all
               (fun (s : Emts.Seeding.seed) ->
                 r.Emts.Algorithm.makespan <= s.makespan +. 1e-9)
               r.Emts.Algorithm.seeds);
          (* replaying the schedule in the simulator reproduces it *)
          let replay =
            Emts_simulator.execute ~graph ~schedule:r.Emts.Algorithm.schedule ()
          in
          Alcotest.(check (float 1e-9))
            (label ^ ": simulator replay")
            r.Emts.Algorithm.makespan replay.Emts_simulator.makespan)
        models)
    (Lazy.force graphs)

(* generated instances survive a serialisation round-trip and still
   produce the identical schedule *)
let test_serialisation_pipeline () =
  List.iter
    (fun (gname, graph) ->
      match Emts_ptg.Serial.of_string (Emts_ptg.Serial.to_string graph) with
      | Error e -> Alcotest.fail (gname ^ ": " ^ e)
      | Ok graph' ->
        let schedule_of g =
          let ctx =
            Emts_alloc.Common.make_ctx ~model:Emts_model.synthetic
              ~platform:Emts_platform.chti ~graph:g
          in
          Emts.Algorithm.schedule_allocation ~ctx (Emts_alloc.Mcpa.allocate ctx)
        in
        Alcotest.(check (float 1e-9))
          (gname ^ ": same makespan after round-trip")
          (Emts_sched.Schedule.makespan (schedule_of graph))
          (Emts_sched.Schedule.makespan (schedule_of graph')))
    (Lazy.force graphs)

(* campaign metrics are sane for every generated class *)
let test_campaign_metrics () =
  let rng = Emts_prng.create ~seed:3 () in
  let tiny = { Emts_experiments.Campaign.fft_per_size = 1; strassen = 1; per_combo = 1 } in
  List.iter
    (fun cls ->
      List.iter
        (fun g ->
          let m = Emts_ptg.Metrics.compute_flop g in
          let label = Emts_experiments.Campaign.class_name cls in
          Alcotest.(check bool) (label ^ ": avg parallelism >= 1") true
            (m.Emts_ptg.Metrics.average_parallelism >= 1. -. 1e-9);
          Alcotest.(check bool) (label ^ ": work >= cp") true
            (m.Emts_ptg.Metrics.total_work
            >= m.Emts_ptg.Metrics.critical_path -. 1e-9))
        (Emts_experiments.Campaign.instances ~rng ~counts:tiny cls))
    Emts_experiments.Campaign.all_classes

(* PTG jobs flow through the batch queue: walltimes derived from real
   schedules, every placement valid *)
let test_batch_of_ptg_jobs () =
  let rng = Emts_prng.create ~seed:8 () in
  let partition =
    Emts_platform.make ~name:"slice" ~processors:16 ~speed_gflops:3.1
  in
  let jobs =
    List.init 6 (fun id ->
        let graph =
          Testutil.costed_daggen rng ~n:20 ~jump:0
        in
        let ctx =
          Emts_alloc.Common.make_ctx ~model:Emts_model.synthetic
            ~platform:partition ~graph
        in
        let m =
          Emts_sched.Schedule.makespan
            (Emts.Algorithm.schedule_allocation ~ctx
               (Emts_alloc.Mcpa.allocate ctx))
        in
        Emts_batch.job ~id ~submit:(float_of_int id *. 10.) ~procs:16
          ~walltime:(1.2 *. m) ~runtime:m)
  in
  let r = Emts_batch.easy_backfilling ~procs:48 jobs in
  Alcotest.(check int) "all jobs placed" 6 (List.length r.Emts_batch.placements);
  List.iter
    (fun (p : Emts_batch.placement) ->
      Alcotest.(check bool) "no kill (walltime padded)" false p.Emts_batch.killed)
    r.Emts_batch.placements

(* The wire protocol's verb registry and its JSON grammar stay in
   lockstep: every verb in [Emts_serve.Protocol.Request.verbs] parses
   from a minimal request, so any verb-driven test (round trips, cram,
   fuzz) that enumerates the list covers the whole grammar.  A new verb
   must extend the table below or fail loudly — never silently skip
   coverage. *)
let test_wire_verb_registry () =
  let module Protocol = Emts_serve.Protocol in
  let minimal = function
    | ("ping" | "stats" | "metrics" | "health") as v ->
      Printf.sprintf {|{"verb":%S}|} v
    | "schedule" -> {|{"verb":"schedule","ptg":"g"}|}
    | "migrate" -> {|{"verb":"migrate","ptg":"g","migrants":[[1,1]]}|}
    | "submit" -> {|{"verb":"submit","session":"s","ptg":"g"}|}
    | "advance" -> {|{"verb":"advance","session":"s"}|}
    | v ->
      Alcotest.fail
        (Printf.sprintf "verb %S has no minimal request — extend the table" v)
  in
  List.iter
    (fun v ->
      match Protocol.Request.of_string (minimal v) with
      | Ok _ -> ()
      | Error m -> Alcotest.fail (Printf.sprintf "verb %S rejected: %s" v m))
    Protocol.Request.verbs;
  match Protocol.Request.of_string {|{"verb":"no-such-verb"}|} with
  | Ok _ -> Alcotest.fail "unknown verb accepted"
  | Error _ -> ()

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "heuristic grid" `Slow test_heuristic_grid;
          Alcotest.test_case "EMTS grid + replay" `Slow test_emts_grid;
          Alcotest.test_case "serialisation round trip" `Quick
            test_serialisation_pipeline;
          Alcotest.test_case "campaign metrics" `Slow test_campaign_metrics;
          Alcotest.test_case "batch of PTG jobs" `Quick test_batch_of_ptg_jobs;
        ] );
      ( "wire",
        [ Alcotest.test_case "verb registry" `Quick test_wire_verb_registry ]
      );
    ]
