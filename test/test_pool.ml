(* Tests for the persistent worker pool and the fitness memoization
   cache (Emts_pool). *)

module Pool = Emts_pool
module Cache = Emts_pool.Cache

let sequential n f =
  let out = Array.make n 0. in
  for i = 0 to n - 1 do
    out.(i) <- f i
  done;
  out

let pooled ~domains n f =
  Pool.with_pool ~domains @@ fun pool ->
  let out = Array.make n 0. in
  Pool.run pool ~n (fun i -> out.(i) <- f i);
  out

let test_matches_sequential () =
  let f i = Float.of_int (i * i) +. (1. /. Float.of_int (i + 1)) in
  let expected = sequential 100 f in
  List.iter
    (fun domains ->
      Alcotest.(check (array (float 0.)))
        (Printf.sprintf "domains %d" domains)
        expected
        (pooled ~domains 100 f))
    [ 1; 2; 4; 7 ]

let test_uneven_work_lands_by_index () =
  (* Wildly uneven item costs: dynamic chunking must still place every
     result in its own slot. *)
  let f i =
    if i mod 13 = 0 then begin
      let acc = ref 0. in
      for k = 1 to 20_000 do
        acc := !acc +. (1. /. Float.of_int k)
      done;
      !acc +. Float.of_int i
    end
    else Float.of_int i
  in
  Alcotest.(check (array (float 0.)))
    "uneven" (sequential 67 f)
    (pooled ~domains:4 67 f)

let test_empty_and_single () =
  Pool.with_pool ~domains:4 @@ fun pool ->
  Pool.run pool ~n:0 (fun _ -> Alcotest.fail "no item to run");
  let hit = ref false in
  Pool.run pool ~n:1 (fun i ->
      Alcotest.(check int) "index 0" 0 i;
      hit := true);
  Alcotest.(check bool) "single item ran" true !hit

let test_pool_reused_across_jobs () =
  (* One pool, many jobs — the per-run usage pattern of the EA. *)
  Pool.with_pool ~domains:3 @@ fun pool ->
  for job = 1 to 20 do
    let n = 10 + job in
    let out = Array.make n (-1) in
    Pool.run pool ~n (fun i -> out.(i) <- i + job);
    Array.iteri
      (fun i v -> Alcotest.(check int) (Printf.sprintf "job %d" job) (i + job) v)
      out
  done

exception Boom of int

let test_exception_propagates_and_pool_survives () =
  Pool.with_pool ~domains:4 @@ fun pool ->
  (* A failing item aborts the job and re-raises the recorded
     exception; every worker must be back waiting (no leaked domain),
     which we observe by running further jobs on the same pool. *)
  let raised =
    try
      Pool.run pool ~n:64 (fun i -> if i = 37 then raise (Boom i));
      None
    with Boom i -> Some i
  in
  Alcotest.(check (option int)) "exception re-raised" (Some 37) raised;
  let out = Array.make 32 0 in
  Pool.run pool ~n:32 (fun i -> out.(i) <- 2 * i);
  Alcotest.(check int) "pool still works after a failed job" 62 out.(31)

let test_with_pool_reraises_after_shutdown () =
  (* Direct regression for the old evaluate_all leak: the body raising
     must not prevent the workers from being joined, and the original
     exception must survive the cleanup. *)
  Alcotest.check_raises "body exception survives shutdown" (Boom 1)
    (fun () ->
      Pool.with_pool ~domains:4 @@ fun pool ->
      Pool.run pool ~n:8 (fun _ -> ());
      raise (Boom 1))

let test_worker_exception_inside_with_pool () =
  Alcotest.check_raises "worker exception survives shutdown" (Boom 5)
    (fun () ->
      Pool.with_pool ~domains:4 @@ fun pool ->
      Pool.run pool ~n:40 (fun i -> if i = 5 then raise (Boom 5)))

let test_shutdown_idempotent_and_run_rejected () =
  let pool = Pool.create ~domains:2 in
  Pool.run pool ~n:4 (fun _ -> ());
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.(check bool) "run after shutdown rejected" true
    (try
       Pool.run pool ~n:4 (fun _ -> ());
       false
     with Invalid_argument _ -> true)

let test_create_validation () =
  Alcotest.(check bool) "domains 0 rejected" true
    (try
       ignore (Pool.create ~domains:0);
       false
     with Invalid_argument _ -> true);
  let p = Pool.create ~domains:5 in
  Alcotest.(check int) "domains recorded" 5 (Pool.domains p);
  Pool.shutdown p

(* --- fault injection ------------------------------------------------- *)

let with_plan events f =
  Fun.protect
    ~finally:(fun () -> Emts_fault.disarm ())
    (fun () ->
      Emts_fault.arm { Emts_fault.Plan.seed = 0; events };
      f ())

(* Regression for exception-safe chunk claiming: a fault raised at the
   claim step (between the fetch-and-add and the item loop) must land
   in the job's failure slot like an item exception — not kill the
   worker domain — so the run re-raises it and the pool still joins
   and serves later jobs. *)
let test_injected_claim_fault_pool_still_joins () =
  Pool.with_pool ~domains:4 @@ fun pool ->
  with_plan
    [
      {
        Emts_fault.Plan.site = Emts_fault.Site.Pool_claim;
        nth = 2;
        action = Emts_fault.Raise;
      };
    ]
    (fun () ->
      let raised =
        try
          Pool.run pool ~n:64 (fun _ -> ());
          false
        with Emts_fault.Injected _ -> true
      in
      Alcotest.(check bool) "claim fault re-raised" true raised);
  (* Every worker domain is back waiting: the same pool completes a
     clean batch, and with_pool's shutdown join-all does not strand. *)
  let out = Array.make 32 0 in
  Pool.run pool ~n:32 (fun i -> out.(i) <- i + 1);
  Alcotest.(check int) "pool joins and works after the fault" 32 out.(31)

let test_injected_eval_fault_kills_one_worker_mid_batch () =
  Pool.with_pool ~domains:4 @@ fun pool ->
  with_plan
    [
      {
        Emts_fault.Plan.site = Emts_fault.Site.Worker_eval;
        nth = 10;
        action = Emts_fault.Raise;
      };
    ]
    (fun () ->
      let completed = Atomic.make 0 in
      let raised =
        try
          Pool.run pool ~n:64 (fun _ -> Atomic.incr completed);
          false
        with Emts_fault.Injected _ -> true
      in
      Alcotest.(check bool) "eval fault re-raised" true raised;
      (* the job aborted early: the poisoned item and abandoned chunks
         never ran *)
      Alcotest.(check bool) "batch was cut short" true
        (Atomic.get completed < 64));
  let out = Array.make 16 0 in
  Pool.run pool ~n:16 (fun i -> out.(i) <- i);
  Alcotest.(check int) "pool survives a mid-batch worker death" 15 out.(15)

let test_disarmed_fire_is_inert () =
  (* No plan armed: the hooks on the hot path change nothing. *)
  Emts_fault.disarm ();
  let f i = Float.of_int (3 * i) in
  Alcotest.(check (array (float 0.)))
    "disarmed pool run" (sequential 50 f)
    (pooled ~domains:4 50 f)

(* --- cache ----------------------------------------------------------- *)

let test_cache_known_hits_any_cutoff () =
  let c = Cache.create ~capacity:16 in
  Cache.store c [| 1; 2; 3 |] (Cache.Known 42.);
  List.iter
    (fun cutoff ->
      Alcotest.(check (option (float 0.)))
        (Printf.sprintf "cutoff %g" cutoff)
        (Some 42.)
        (Cache.find c [| 1; 2; 3 |] ~cutoff))
    [ infinity; 100.; 42.; 1. ];
  Alcotest.(check (option (float 0.))) "unknown key misses" None
    (Cache.find c [| 3; 2; 1 |] ~cutoff:infinity)

let test_cache_rejection_cutoff_aware () =
  (* A genome rejected at cutoff 5 has makespan > 5.  That rejection is
     reusable for any cutoff <= 5 but NOT for a laxer one, where the
     schedule could complete below the new cutoff. *)
  let c = Cache.create ~capacity:16 in
  Cache.store c [| 7; 7 |] (Cache.Rejected_above 5.);
  Alcotest.(check (option (float 0.))) "tighter cutoff reuses rejection"
    (Some infinity)
    (Cache.find c [| 7; 7 |] ~cutoff:4.);
  Alcotest.(check (option (float 0.))) "equal cutoff reuses rejection"
    (Some infinity)
    (Cache.find c [| 7; 7 |] ~cutoff:5.);
  Alcotest.(check (option (float 0.))) "laxer cutoff must re-evaluate" None
    (Cache.find c [| 7; 7 |] ~cutoff:6.);
  (* the re-evaluation completed: the entry upgrades in place *)
  Cache.store c [| 7; 7 |] (Cache.Known 5.5);
  Alcotest.(check (option (float 0.))) "upgraded entry answers everything"
    (Some 5.5)
    (Cache.find c [| 7; 7 |] ~cutoff:6.)

let test_cache_capacity_bounded () =
  let c = Cache.create ~capacity:4 in
  for i = 0 to 99 do
    Cache.store c [| i |] (Cache.Known (Float.of_int i))
  done;
  Alcotest.(check bool)
    (Printf.sprintf "length %d <= capacity" (Cache.length c))
    true
    (Cache.length c <= Cache.capacity c);
  Alcotest.(check bool) "capacity 0 rejected" true
    (try
       ignore (Cache.create ~capacity:0);
       false
     with Invalid_argument _ -> true)

let test_cache_copies_keys () =
  let c = Cache.create ~capacity:16 in
  let key = [| 9; 9; 9 |] in
  Cache.store c key (Cache.Known 1.);
  (* mutating the caller's array must not corrupt the stored key *)
  key.(0) <- 0;
  Alcotest.(check (option (float 0.))) "original key still present"
    (Some 1.)
    (Cache.find c [| 9; 9; 9 |] ~cutoff:infinity);
  Alcotest.(check (option (float 0.))) "mutated key is a different genome"
    None
    (Cache.find c key ~cutoff:infinity)

let test_cache_concurrent_use () =
  (* Hammer one cache from several domains through the pool: no crash,
     and every lookup that hits returns the value stored for that key. *)
  Pool.with_pool ~domains:4 @@ fun pool ->
  let c = Cache.create ~capacity:1024 in
  Pool.run pool ~n:400 (fun i ->
      let key = [| i mod 32; (i / 32) mod 4 |] in
      match Cache.find c key ~cutoff:infinity with
      | Some v ->
        if v <> Float.of_int ((i mod 32) + (100 * ((i / 32) mod 4))) then
          failwith "stale value"
      | None ->
        Cache.store c key
          (Cache.Known (Float.of_int ((i mod 32) + (100 * ((i / 32) mod 4))))));
  Alcotest.(check bool) "table bounded" true (Cache.length c <= 1024)

(* Property: any (domains, n) split produces exactly the sequential
   result array. *)
let prop_pool_matches_sequential =
  QCheck.Test.make ~name:"pool result = sequential result" ~count:50
    QCheck.(pair (int_range 1 8) (int_range 0 200))
    (fun (domains, n) ->
      let f i = Float.of_int (i * 7) +. Float.of_int (i mod 3) in
      pooled ~domains n f = sequential n f)

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "matches sequential" `Quick test_matches_sequential;
          Alcotest.test_case "uneven work" `Quick test_uneven_work_lands_by_index;
          Alcotest.test_case "empty and single" `Quick test_empty_and_single;
          Alcotest.test_case "reuse across jobs" `Quick
            test_pool_reused_across_jobs;
          Alcotest.test_case "create validation" `Quick test_create_validation;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "propagates, pool survives" `Quick
            test_exception_propagates_and_pool_survives;
          Alcotest.test_case "with_pool re-raises after join" `Quick
            test_with_pool_reraises_after_shutdown;
          Alcotest.test_case "worker exception inside with_pool" `Quick
            test_worker_exception_inside_with_pool;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_shutdown_idempotent_and_run_rejected;
        ] );
      ( "faults",
        [
          Alcotest.test_case "claim fault: pool still joins" `Quick
            test_injected_claim_fault_pool_still_joins;
          Alcotest.test_case "eval fault kills one worker mid-batch" `Quick
            test_injected_eval_fault_kills_one_worker_mid_batch;
          Alcotest.test_case "disarmed hooks are inert" `Quick
            test_disarmed_fire_is_inert;
        ] );
      ( "cache",
        [
          Alcotest.test_case "known entries" `Quick
            test_cache_known_hits_any_cutoff;
          Alcotest.test_case "cutoff-aware rejections" `Quick
            test_cache_rejection_cutoff_aware;
          Alcotest.test_case "capacity bound" `Quick test_cache_capacity_bounded;
          Alcotest.test_case "keys copied" `Quick test_cache_copies_keys;
          Alcotest.test_case "concurrent use" `Quick test_cache_concurrent_use;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_pool_matches_sequential ]);
    ]
