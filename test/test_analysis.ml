(* Tests for Emts_ptg.Analysis: bottom/top levels, critical paths,
   delta-critical sets, average area. *)

module Graph = Emts_ptg.Graph
module A = Emts_ptg.Analysis

let check_float = Alcotest.(check (float 1e-9))

let test_bottom_levels_diamond () =
  let g = Testutil.diamond_graph () in
  let bl = A.bottom_levels g ~time:(Testutil.unit_speed_times g) in
  Alcotest.(check (array (float 1e-9))) "hand-computed" [| 80.; 60.; 70.; 40. |] bl

let test_top_levels_diamond () =
  let g = Testutil.diamond_graph () in
  let tl = A.top_levels g ~time:(Testutil.unit_speed_times g) in
  Alcotest.(check (array (float 1e-9))) "hand-computed" [| 0.; 10.; 10.; 40. |] tl

let test_critical_path_diamond () =
  let g = Testutil.diamond_graph () in
  let time = Testutil.unit_speed_times g in
  check_float "length" 80. (A.critical_path_length g ~time);
  Alcotest.(check (list int)) "path 0-2-3" [ 0; 2; 3 ] (A.critical_path g ~time)

let test_bottom_levels_chain () =
  let g = Emts_daggen.Shapes.chain 4 in
  let bl = A.bottom_levels g ~time:(Testutil.const_time 2.) in
  Alcotest.(check (array (float 1e-9))) "chain" [| 8.; 6.; 4.; 2. |] bl

let test_critical_path_two_chains () =
  (* Both chains tie at length 2; the smaller-id source must win. *)
  let g = Testutil.two_chains_graph () in
  Alcotest.(check (list int)) "deterministic tie-break" [ 0; 1 ]
    (A.critical_path g ~time:(Testutil.const_time 1.))

let test_empty_graph () =
  let g = Graph.Builder.build (Graph.Builder.create ()) in
  check_float "empty cp length" 0.
    (A.critical_path_length g ~time:(Testutil.const_time 1.));
  Alcotest.(check (list int)) "empty cp" [] (A.critical_path g ~time:(Testutil.const_time 1.))

let test_invalid_time_rejected () =
  let g = Testutil.diamond_graph () in
  Alcotest.(check bool)
    "negative time raises" true
    (try
       ignore (A.bottom_levels g ~time:(Testutil.const_time (-1.)));
       false
     with Invalid_argument _ -> true)

let test_delta_critical () =
  let g = Testutil.diamond_graph () in
  let time = Testutil.unit_speed_times g in
  (* bl = [80;60;70;40]; delta=0.85 -> cutoff 68 -> {0, 2} *)
  Alcotest.(check (list int)) "delta=0.85" [ 0; 2 ]
    (A.delta_critical g ~time ~delta:0.85);
  Alcotest.(check (list int)) "delta=0 keeps all" [ 0; 1; 2; 3 ]
    (A.delta_critical g ~time ~delta:0.);
  Alcotest.(check (list int)) "delta=1 keeps the top" [ 0 ]
    (A.delta_critical g ~time ~delta:1.)

let test_delta_critical_by_level () =
  let g = Testutil.diamond_graph () in
  let time = Testutil.unit_speed_times g in
  let buckets = A.delta_critical_by_level g ~time ~delta:0.85 in
  Alcotest.(check int) "levels" 3 (Array.length buckets);
  Alcotest.(check (list int)) "level 0" [ 0 ] buckets.(0);
  Alcotest.(check (list int)) "level 1" [ 2 ] buckets.(1);
  Alcotest.(check (list int)) "level 2 empty" [] buckets.(2)

let test_work_and_average_area () =
  let g = Testutil.diamond_graph () in
  let time = Testutil.unit_speed_times g in
  let alloc = function 0 -> 2 | 1 -> 1 | 2 -> 3 | _ -> 4 in
  (* work = 10*2 + 20*1 + 30*3 + 40*4 = 290 *)
  check_float "work" 290. (A.work g ~time ~alloc);
  check_float "average area on 10 procs" 29.
    (A.average_area g ~time ~alloc ~procs:10)

let prop_bottom_ge_own_time =
  QCheck.Test.make ~name:"bl(v) >= time(v), with equality at sinks"
    ~count:200 (Testutil.arbitrary_dag ())
    (fun g ->
      let time = Testutil.unit_speed_times g in
      let bl = A.bottom_levels g ~time in
      List.init (Graph.task_count g) Fun.id
      |> List.for_all (fun v ->
             bl.(v) >= time v -. 1e-9
             && (Array.length (Graph.succs g v) > 0 || bl.(v) = time v)))

let prop_bl_plus_tl_bounded_by_cp =
  QCheck.Test.make ~name:"tl(v) + bl(v) <= critical path length" ~count:200
    (Testutil.arbitrary_dag ())
    (fun g ->
      let time = Testutil.unit_speed_times g in
      let bl = A.bottom_levels g ~time and tl = A.top_levels g ~time in
      let cp = A.critical_path_length g ~time in
      List.init (Graph.task_count g) Fun.id
      |> List.for_all (fun v -> tl.(v) +. bl.(v) <= cp +. 1e-6))

let prop_critical_path_is_path_with_cp_length =
  QCheck.Test.make ~name:"critical_path is a real path of maximal length"
    ~count:200 (Testutil.arbitrary_dag ())
    (fun g ->
      let time = Testutil.unit_speed_times g in
      let path = A.critical_path g ~time in
      let rec edges_ok = function
        | a :: (b :: _ as rest) ->
          Graph.has_edge g ~src:a ~dst:b && edges_ok rest
        | [ _ ] | [] -> true
      in
      let length = List.fold_left (fun acc v -> acc +. time v) 0. path in
      edges_ok path
      && Float.abs (length -. A.critical_path_length g ~time) < 1e-6)

let () =
  Alcotest.run "analysis"
    [
      ( "levels",
        [
          Alcotest.test_case "bottom levels (diamond)" `Quick
            test_bottom_levels_diamond;
          Alcotest.test_case "top levels (diamond)" `Quick
            test_top_levels_diamond;
          Alcotest.test_case "bottom levels (chain)" `Quick
            test_bottom_levels_chain;
          Alcotest.test_case "invalid time" `Quick test_invalid_time_rejected;
        ] );
      ( "critical path",
        [
          Alcotest.test_case "diamond" `Quick test_critical_path_diamond;
          Alcotest.test_case "tie-break" `Quick test_critical_path_two_chains;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
        ] );
      ( "delta-critical",
        [
          Alcotest.test_case "flat set" `Quick test_delta_critical;
          Alcotest.test_case "by level" `Quick test_delta_critical_by_level;
        ] );
      ( "area",
        [ Alcotest.test_case "work / average area" `Quick test_work_and_average_area ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_bottom_ge_own_time;
            prop_bl_plus_tl_bounded_by_cp;
            prop_critical_path_is_path_with_cp_length;
          ] );
    ]
