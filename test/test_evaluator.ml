(* Tests for the delta fitness evaluator: bit-identical equivalence with
   the from-scratch list-scheduler path over random mutation chains
   (including cutoffs, duplicates and instance rebinds), plus the
   zero-allocation budget the hot path is designed around. *)

module Ev = Emts_sched.Evaluator
module LS = Emts_sched.List_scheduler
module Graph = Emts_ptg.Graph

let bits = Int64.bits_of_float
let float_eq a b = Int64.equal (bits a) (bits b)

(* From-scratch reference: [infinity] on rejection, like the evaluator. *)
let reference ~graph ~tables ~procs ~alloc ~cutoff =
  let times = Emts_sched.Allocation.times_of_tables alloc ~tables in
  match LS.makespan_bounded ~graph ~times ~alloc ~procs ~cutoff with
  | Some m -> m
  | None -> infinity

(* Random execution-time tables drawn from a small discrete set, so
   distinct allocations frequently share bitwise-equal times — the case
   where the divergence test must fall back to comparing allocations. *)
let make_tables rng g ~procs =
  Array.init (Graph.task_count g) (fun _ ->
      Array.init procs (fun _ -> float_of_int (Emts_prng.int rng 8) /. 2.))

let check_against_reference ~what ev ~graph ~tables ~procs ~alloc ~cutoff =
  let expected = reference ~graph ~tables ~procs ~alloc ~cutoff in
  let got = Ev.makespan ev ~graph ~tables ~procs ~alloc ~cutoff () in
  if not (float_eq expected got) then
    Alcotest.failf "%s: delta %h <> from-scratch %h" what got expected;
  if Ev.last_rejected ev <> (expected = infinity && cutoff < infinity) then
    Alcotest.failf "%s: rejection flag disagrees with the reference" what

(* One mutation chain on one instance: start from a random allocation,
   repeatedly flip a few alleles (the first and last ones included) and
   under varying cutoffs, checking every evaluation bitwise. *)
let run_chain rng ev ~graph ~tables ~procs ~steps =
  let n = Graph.task_count graph in
  let alloc = Emts_check.Gen.random_valid_alloc rng graph ~procs in
  let best = ref infinity in
  for step = 0 to steps - 1 do
    (match step mod 7 with
    | 0 -> () (* duplicate genome: full-schedule reuse *)
    | 1 -> alloc.(0) <- 1 + Emts_prng.int rng procs
    | 2 -> alloc.(n - 1) <- 1 + Emts_prng.int rng procs
    | _ ->
      let m = 1 + Emts_prng.int rng 3 in
      for _ = 1 to m do
        alloc.(Emts_prng.int rng n) <- 1 + Emts_prng.int rng procs
      done);
    let cutoff =
      match step mod 5 with
      | 3 when !best < infinity -> !best *. Emts_prng.float_in rng 0.5 1.2
      | 4 when !best < infinity -> !best (* exactly at the best: tight *)
      | _ -> infinity
    in
    let got = Ev.makespan ev ~graph ~tables ~procs ~alloc ~cutoff () in
    let expected = reference ~graph ~tables ~procs ~alloc ~cutoff in
    if not (float_eq expected got) then
      Alcotest.failf "step %d (cutoff %h): delta %h <> from-scratch %h" step
        cutoff got expected;
    if got < !best then best := got
  done

let prop_delta_equals_scratch =
  QCheck.Test.make ~name:"delta == from-scratch over mutation chains"
    ~count:60
    QCheck.(pair (Testutil.arbitrary_dag ~max_n:40 ()) small_int)
    (fun (graph, seed) ->
      let rng = Emts_prng.create ~seed () in
      let procs = 1 + Emts_prng.int rng 8 in
      let tables = make_tables rng graph ~procs in
      let ev = Ev.create () in
      run_chain rng ev ~graph ~tables ~procs ~steps:40;
      true)

let test_first_and_last_allele () =
  (* Deterministic check of the two boundary mutation sites on a chain
     (every task on the critical path, so any change invalidates the
     whole prefix) and on independent tasks (maximal reuse). *)
  List.iter
    (fun graph ->
      let procs = 3 in
      let rng = Emts_prng.create ~seed:7 () in
      let tables = make_tables rng graph ~procs in
      let n = Graph.task_count graph in
      let ev = Ev.create () in
      let alloc = Array.make n 1 in
      check_against_reference ~what:"initial" ev ~graph ~tables ~procs ~alloc
        ~cutoff:infinity;
      alloc.(0) <- procs;
      check_against_reference ~what:"allele 0" ev ~graph ~tables ~procs ~alloc
        ~cutoff:infinity;
      alloc.(n - 1) <- 2;
      check_against_reference ~what:"last allele" ev ~graph ~tables ~procs
        ~alloc ~cutoff:infinity;
      check_against_reference ~what:"duplicate" ev ~graph ~tables ~procs
        ~alloc ~cutoff:infinity)
    [ Emts_daggen.Shapes.chain 12; Emts_daggen.Shapes.independent 12 ]

let test_rebind_across_instances () =
  (* One evaluator alternating between two instances of different sizes
     and platform widths: every rebind must land on a correct full run,
     and the snapshot must never leak across instances. *)
  let rng = Emts_prng.create ~seed:11 () in
  let g1 = Testutil.random_triangular_dag rng ~n:20 ~p:0.2 in
  let g2 = Testutil.random_triangular_dag rng ~n:33 ~p:0.35 in
  let t1 = make_tables rng g1 ~procs:4 and t2 = make_tables rng g2 ~procs:7 in
  let ev = Ev.create () in
  for round = 0 to 11 do
    let graph, tables, procs =
      if round mod 2 = 0 then (g1, t1, 4) else (g2, t2, 7)
    in
    let alloc = Emts_check.Gen.random_valid_alloc rng graph ~procs in
    check_against_reference
      ~what:(Printf.sprintf "round %d" round)
      ev ~graph ~tables ~procs ~alloc ~cutoff:infinity
  done;
  let s = Ev.stats ev in
  Alcotest.(check bool)
    "rebinds force full runs" true
    (s.Ev.full_runs >= 12)

let test_rejection_keeps_snapshot_usable () =
  (* A cutoff rejection must not corrupt later evaluations: interleave
     rejected and accepted evaluations and keep checking bitwise. *)
  let rng = Emts_prng.create ~seed:23 () in
  let graph = Testutil.random_triangular_dag rng ~n:30 ~p:0.25 in
  let procs = 5 in
  let tables = make_tables rng graph ~procs in
  let ev = Ev.create () in
  let n = Graph.task_count graph in
  let alloc = Array.make n 1 in
  let full = reference ~graph ~tables ~procs ~alloc ~cutoff:infinity in
  List.iter
    (fun cutoff ->
      check_against_reference ~what:"interleaved" ev ~graph ~tables ~procs
        ~alloc ~cutoff;
      alloc.(Emts_prng.int rng n) <- 1 + Emts_prng.int rng procs)
    [ infinity; full /. 2.; infinity; 0.; full; infinity; full /. 4.; infinity ]

let test_input_validation () =
  let graph = Emts_daggen.Shapes.chain 3 in
  let tables = [| [| 1.; 2. |]; [| 1.; 2. |]; [| 1.; 2. |] |] in
  let ev = Ev.create () in
  let raises what f =
    match f () with
    | (_ : float) -> Alcotest.failf "%s: expected Invalid_argument" what
    | exception Invalid_argument _ -> ()
  in
  raises "alloc too long" (fun () ->
      Ev.makespan ev ~graph ~tables ~procs:2 ~alloc:[| 1; 1; 1; 1 |]
        ~cutoff:infinity ());
  raises "alloc out of range" (fun () ->
      Ev.makespan ev ~graph ~tables ~procs:2 ~alloc:[| 1; 3; 1 |]
        ~cutoff:infinity ());
  raises "NaN cutoff" (fun () ->
      Ev.makespan ev ~graph ~tables ~procs:2 ~alloc:[| 1; 1; 1 |]
        ~cutoff:Float.nan ());
  raises "NaN time" (fun () ->
      Ev.makespan ev ~graph
        ~tables:[| [| 1. |]; [| Float.nan |]; [| 1. |] |]
        ~procs:1 ~alloc:[| 1; 1; 1 |] ~cutoff:infinity ())

(* The allocation budget the hot path is designed around.  Steady state
   (instance bound, buffers warm) allocates nothing inside the
   evaluator; the only per-call allocation left is the boxed float
   crossing the function boundary (OCaml's calling convention), a
   couple of words.  The budget below is deliberately far under one
   small scratch array, so any reintroduced per-eval allocation fails
   loudly. *)
let test_steady_state_allocation () =
  let rng = Emts_prng.create ~seed:5 () in
  let graph = Testutil.random_triangular_dag rng ~n:60 ~p:0.15 in
  let procs = 16 in
  let tables = make_tables rng graph ~procs in
  let n = Graph.task_count graph in
  let ev = Ev.create () in
  let alloc = Emts_check.Gen.random_valid_alloc rng graph ~procs in
  (* warm up: bind the instance and grow every buffer *)
  for _ = 1 to 50 do
    alloc.(Emts_prng.int rng n) <- 1 + Emts_prng.int rng procs;
    ignore (Ev.makespan ev ~graph ~tables ~procs ~alloc ~cutoff:infinity ())
  done;
  (* pre-draw mutation sites so the loop body allocates nothing itself *)
  let rounds = 1000 in
  let sites = Array.init rounds (fun _ -> Emts_prng.int rng n) in
  let values = Array.init rounds (fun _ -> 1 + Emts_prng.int rng procs) in
  let sink = Array.make 1 0. in
  let before = Gc.allocated_bytes () in
  for i = 0 to rounds - 1 do
    alloc.(sites.(i)) <- values.(i);
    sink.(0) <-
      sink.(0) +. Ev.makespan ev ~graph ~tables ~procs ~alloc ~cutoff:infinity ()
  done;
  let after = Gc.allocated_bytes () in
  let per_eval = (after -. before) /. float_of_int rounds in
  if per_eval > 64. then
    Alcotest.failf "steady-state allocation %.1f bytes/eval (budget 64)"
      per_eval;
  Alcotest.(check bool) "sink finite" true (Float.is_finite sink.(0))

let test_stats_and_metrics_accounting () =
  (* Diamond 0 -> {1, 2} -> 3.  Task 2's time dwarfs task 1's under
     every allocation, so mutating task 1 changes bl(1) but not bl(0):
     the change set is exactly {1}, whose earliest heap entry is step 1
     (right after the source pops) — a 1-step prefix reuse.  An
     independent graph would NOT exercise this: every task is a source
     there, so any change forces a full run. *)
  let graph = Testutil.diamond_graph () in
  let procs = 2 in
  let tables = [| [| 1.; 1. |]; [| 1.; 2. |]; [| 10.; 10. |]; [| 1.; 1. |] |] in
  let ev = Ev.create () in
  let alloc = Array.make 4 1 in
  ignore (Ev.makespan ev ~graph ~tables ~procs ~alloc ~cutoff:infinity ());
  (* duplicate: the whole 4-step schedule is reused *)
  ignore (Ev.makespan ev ~graph ~tables ~procs ~alloc ~cutoff:infinity ());
  (* mutate task 1: divergence at step 1, the source pop is reused *)
  alloc.(1) <- 2;
  ignore (Ev.makespan ev ~graph ~tables ~procs ~alloc ~cutoff:infinity ());
  let s = Ev.stats ev in
  Alcotest.(check int) "one full run" 1 s.Ev.full_runs;
  Alcotest.(check int) "two incremental runs" 2 s.Ev.incremental_runs;
  Alcotest.(check int) "reused steps" 5 s.Ev.reused_steps;
  Alcotest.(check int) "scheduled steps" 7 s.Ev.scheduled_steps;
  Alcotest.(check bool)
    "scheduled + reused covers all steps" true
    (s.Ev.scheduled_steps + s.Ev.reused_steps = 12)

let () =
  Alcotest.run "evaluator"
    [
      ( "delta",
        [
          QCheck_alcotest.to_alcotest prop_delta_equals_scratch;
          Alcotest.test_case "first and last allele" `Quick
            test_first_and_last_allele;
          Alcotest.test_case "rebind across instances" `Quick
            test_rebind_across_instances;
          Alcotest.test_case "rejections keep snapshot usable" `Quick
            test_rejection_keeps_snapshot_usable;
          Alcotest.test_case "input validation" `Quick test_input_validation;
          Alcotest.test_case "stats accounting" `Quick
            test_stats_and_metrics_accounting;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "steady state is allocation-free" `Quick
            test_steady_state_allocation;
        ] );
    ]
