(* Tests for the EMTS mutation operator (paper Sections III-C/III-D). *)

module M = Emts.Mutation

let test_default_params () =
  Alcotest.(check (float 0.)) "a" 0.2 M.default.M.a;
  Alcotest.(check (float 0.)) "sigma shrink" 5. M.default.M.sigma_shrink;
  Alcotest.(check (float 0.)) "sigma stretch" 5. M.default.M.sigma_stretch;
  Alcotest.(check (float 0.)) "fm" 0.33 M.default.M.fm

let test_validate () =
  Alcotest.(check bool) "default ok" true (M.validate M.default = Ok M.default);
  let bad p = Result.is_error (M.validate p) in
  Alcotest.(check bool) "a > 1" true (bad { M.default with M.a = 1.5 });
  Alcotest.(check bool) "negative sigma" true
    (bad { M.default with M.sigma_shrink = -1. });
  Alcotest.(check bool) "fm = 0" true (bad { M.default with M.fm = 0. });
  Alcotest.(check bool) "fm > 1" true (bad { M.default with M.fm = 1.1 })

let test_draw_never_zero () =
  let rng = Emts_prng.create ~seed:1 () in
  for _ = 1 to 10_000 do
    Alcotest.(check bool) "C <> 0" true (M.draw_adjustment rng M.default <> 0)
  done

let test_draw_sign_proportions () =
  let rng = Emts_prng.create ~seed:2 () in
  let negatives = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if M.draw_adjustment rng M.default < 0 then incr negatives
  done;
  let rate = float_of_int !negatives /. float_of_int n in
  (* the paper: allocations shrink with probability a = 0.2 *)
  Alcotest.(check bool) "shrink rate ~ 0.2" true (Float.abs (rate -. 0.2) < 0.01)

let test_draw_small_steps_more_likely () =
  let rng = Emts_prng.create ~seed:3 () in
  let small = ref 0 and large = ref 0 in
  for _ = 1 to 50_000 do
    let c = abs (M.draw_adjustment rng M.default) in
    if c <= 3 then incr small else if c >= 10 then incr large
  done;
  Alcotest.(check bool) "mass concentrates on small steps" true
    (!small > 3 * !large)

let test_deterministic_extremes () =
  let rng = Emts_prng.create ~seed:4 () in
  (* a = 1: always shrink; a = 0: always stretch *)
  for _ = 1 to 1000 do
    Alcotest.(check bool) "a=1 shrinks" true
      (M.draw_adjustment rng { M.default with M.a = 1. } < 0);
    Alcotest.(check bool) "a=0 stretches" true
      (M.draw_adjustment rng { M.default with M.a = 0. } > 0)
  done;
  (* sigma = 0: |N(0,0)| = 0, so steps are exactly +-1 *)
  let unit_params =
    { M.default with M.sigma_shrink = 0.; sigma_stretch = 0. }
  in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "unit steps" true
      (abs (M.draw_adjustment rng unit_params) = 1)
  done

let test_allele_count_formula () =
  (* V = 100, fm = 0.33, U = 5: generation 1 -> 33, annealing down. *)
  let count g =
    M.allele_count M.default ~generation:g ~total_generations:5
      ~genome_length:100
  in
  Alcotest.(check int) "first generation 33%" 33 (count 1);
  Alcotest.(check int) "second" 26 (count 2);
  Alcotest.(check int) "third" 20 (count 3);
  Alcotest.(check int) "fourth" 13 (count 4);
  Alcotest.(check int) "fifth" 7 (count 5);
  (* tiny genomes still mutate at least one allele *)
  Alcotest.(check int) "at least 1" 1
    (M.allele_count M.default ~generation:5 ~total_generations:5
       ~genome_length:2)

let test_allele_count_validation () =
  let reject label f =
    Alcotest.(check bool) label true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  reject "generation 0" (fun () ->
      M.allele_count M.default ~generation:0 ~total_generations:5
        ~genome_length:10);
  reject "generation > U" (fun () ->
      M.allele_count M.default ~generation:6 ~total_generations:5
        ~genome_length:10);
  reject "empty genome" (fun () ->
      M.allele_count M.default ~generation:1 ~total_generations:5
        ~genome_length:0)

let test_mutate_bounds_and_count () =
  let rng = Emts_prng.create ~seed:5 () in
  let genome = Array.make 50 10 in
  for generation = 1 to 5 do
    let child =
      M.mutate rng M.default ~procs:20 ~generation ~total_generations:5 genome
    in
    Alcotest.(check int) "same length" 50 (Array.length child);
    Array.iter
      (fun s -> Alcotest.(check bool) "in [1, procs]" true (1 <= s && s <= 20))
      child
  done;
  (* the parent is never modified *)
  Alcotest.(check (array int)) "parent intact" (Array.make 50 10) genome

let test_mutate_changes_at_most_m () =
  let rng = Emts_prng.create ~seed:6 () in
  for generation = 1 to 5 do
    let genome = Array.make 100 10 in
    let child =
      M.mutate rng M.default ~procs:200 ~generation ~total_generations:5
        genome
    in
    let m =
      M.allele_count M.default ~generation ~total_generations:5
        ~genome_length:100
    in
    let changed = ref 0 in
    Array.iteri (fun i s -> if s <> genome.(i) then incr changed) child;
    (* with procs = 200 no clamping hides a change, and C <> 0 means
       every selected allele really changes *)
    Alcotest.(check int)
      (Printf.sprintf "gen %d changes exactly m" generation)
      m !changed
  done

(* --- recombination --- *)

module R = Emts.Recombination

let test_recombination_alleles_from_parents () =
  let rng = Emts_prng.create ~seed:10 () in
  let a = Array.make 30 1 and b = Array.make 30 9 in
  let levels = Array.init 30 (fun i -> i / 10) in
  List.iter
    (fun kind ->
      let child = R.apply kind ~levels rng a b in
      Alcotest.(check int) "length" 30 (Array.length child);
      Array.iter
        (fun v ->
          Alcotest.(check bool)
            (R.kind_to_string kind ^ " allele from a parent")
            true (v = 1 || v = 9))
        child)
    [ R.Uniform; R.One_point; R.Level_aware ]

let test_one_point_is_contiguous () =
  let rng = Emts_prng.create ~seed:11 () in
  let a = Array.make 20 1 and b = Array.make 20 9 in
  for _ = 1 to 50 do
    let child = R.apply R.One_point ~levels:(Array.make 20 0) rng a b in
    (* exactly one switch point from a-alleles to b-alleles *)
    let switches = ref 0 in
    for i = 1 to 19 do
      if child.(i) <> child.(i - 1) then incr switches
    done;
    Alcotest.(check bool) "at most one switch" true (!switches <= 1);
    Alcotest.(check int) "prefix from a" 1 child.(0)
  done

let test_level_aware_keeps_levels_together () =
  let rng = Emts_prng.create ~seed:12 () in
  let a = Array.make 30 1 and b = Array.make 30 9 in
  let levels = Array.init 30 (fun i -> i mod 5) in
  for _ = 1 to 50 do
    let child = R.apply R.Level_aware ~levels rng a b in
    (* all tasks of one level come from the same parent *)
    let source = Array.make 5 0 in
    Array.iteri (fun i v -> source.(levels.(i)) <- v) child;
    Array.iteri
      (fun i v ->
        Alcotest.(check int) "level travels together" source.(levels.(i)) v)
      child
  done

let test_recombination_validation () =
  let rng = Emts_prng.create ~seed:13 () in
  Alcotest.(check bool) "length mismatch" true
    (try
       ignore (R.apply R.Uniform ~levels:[| 0 |] rng [| 1 |] [| 1; 2 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty parents" true
    (try
       ignore (R.apply R.Uniform ~levels:[||] rng [||] [||]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "levels mismatch (level-aware)" true
    (try
       ignore (R.apply R.Level_aware ~levels:[| 0 |] rng [| 1; 2 |] [| 3; 4 |]);
       false
     with Invalid_argument _ -> true)

let prop_mutate_valid =
  QCheck.Test.make ~name:"mutants always valid allocations" ~count:300
    QCheck.(
      quad small_int (int_range 1 64) (int_range 1 100) (int_range 1 10))
    (fun (seed, procs, len, total_generations) ->
      let rng = Emts_prng.create ~seed () in
      let genome =
        Array.init len (fun i -> 1 + (i mod procs))
      in
      let generation = 1 + (seed mod total_generations) in
      let child =
        M.mutate rng M.default ~procs ~generation ~total_generations genome
      in
      Array.for_all (fun s -> 1 <= s && s <= procs) child)

let () =
  Alcotest.run "mutation"
    [
      ( "operator",
        [
          Alcotest.test_case "defaults" `Quick test_default_params;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "never zero" `Quick test_draw_never_zero;
          Alcotest.test_case "sign proportions" `Slow
            test_draw_sign_proportions;
          Alcotest.test_case "small steps likely" `Slow
            test_draw_small_steps_more_likely;
          Alcotest.test_case "extreme params" `Quick test_deterministic_extremes;
        ] );
      ( "annealing",
        [
          Alcotest.test_case "allele count formula" `Quick
            test_allele_count_formula;
          Alcotest.test_case "allele count validation" `Quick
            test_allele_count_validation;
        ] );
      ( "mutate",
        [
          Alcotest.test_case "bounds" `Quick test_mutate_bounds_and_count;
          Alcotest.test_case "changes exactly m" `Quick
            test_mutate_changes_at_most_m;
        ] );
      ( "recombination",
        [
          Alcotest.test_case "alleles from parents" `Quick
            test_recombination_alleles_from_parents;
          Alcotest.test_case "one-point contiguous" `Quick
            test_one_point_is_contiguous;
          Alcotest.test_case "level-aware grouping" `Quick
            test_level_aware_keeps_levels_together;
          Alcotest.test_case "validation" `Quick test_recombination_validation;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_mutate_valid ]);
    ]
