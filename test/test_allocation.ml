(* Tests for Emts_sched.Allocation. *)

module Alloc = Emts_sched.Allocation
module Graph = Emts_ptg.Graph

let test_uniform_and_ones () =
  let g = Testutil.diamond_graph () in
  Alcotest.(check (array int)) "uniform" [| 3; 3; 3; 3 |] (Alloc.uniform g 3);
  Alcotest.(check (array int)) "ones" [| 1; 1; 1; 1 |] (Alloc.ones g);
  Alcotest.(check bool)
    "p=0 rejected" true
    (try
       ignore (Alloc.uniform g 0);
       false
     with Invalid_argument _ -> true)

let test_validate () =
  let g = Testutil.diamond_graph () in
  Alcotest.(check bool) "good" true
    (Alloc.validate [| 1; 2; 3; 4 |] ~graph:g ~procs:4 = Ok ());
  Alcotest.(check bool) "wrong length" true
    (Result.is_error (Alloc.validate [| 1; 2 |] ~graph:g ~procs:4));
  Alcotest.(check bool) "zero entry" true
    (Result.is_error (Alloc.validate [| 0; 1; 1; 1 |] ~graph:g ~procs:4));
  Alcotest.(check bool) "too large" true
    (Result.is_error (Alloc.validate [| 1; 1; 1; 5 |] ~graph:g ~procs:4))

let test_clamp () =
  Alcotest.(check (array int)) "clamped" [| 1; 1; 8; 3 |]
    (Alloc.clamp [| -5; 0; 12; 3 |] ~procs:8)

let test_times () =
  let g = Testutil.diamond_graph () in
  (* flop = [10;20;30;40], chti speed 4.3e9, alpha=0 default *)
  let alloc = [| 1; 2; 2; 4 |] in
  let times =
    Alloc.times alloc ~model:Emts_model.amdahl ~platform:Emts_platform.chti
      ~graph:g
  in
  let speed = 4.3e9 in
  Alcotest.(check (array (float 1e-18)))
    "per-task times"
    [| 10. /. speed; 20. /. 2. /. speed; 30. /. 2. /. speed; 40. /. 4. /. speed |]
    times

let test_times_of_tables () =
  let tables = [| [| 10.; 6. |]; [| 20.; 12. |] |] in
  Alcotest.(check (array (float 0.))) "lookup" [| 6.; 20. |]
    (Alloc.times_of_tables [| 2; 1 |] ~tables);
  Alcotest.(check bool)
    "out-of-table allocation rejected" true
    (try
       ignore (Alloc.times_of_tables [| 3; 1 |] ~tables);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "length mismatch rejected" true
    (try
       ignore (Alloc.times_of_tables [| 1 |] ~tables);
       false
     with Invalid_argument _ -> true)

let prop_clamp_in_range =
  QCheck.Test.make ~name:"clamp lands in [1, procs]" ~count:300
    QCheck.(pair (array small_int) (int_range 1 64))
    (fun (alloc, procs) ->
      Array.for_all
        (fun s -> 1 <= s && s <= procs)
        (Alloc.clamp alloc ~procs))

let prop_tables_match_model =
  QCheck.Test.make
    ~name:"times_of_tables = times, through Memo.tabulate_graph" ~count:100
    (Testutil.arbitrary_dag_alloc ~procs:20 ())
    (fun (g, alloc) ->
      let model = Emts_model.synthetic and platform = Emts_platform.chti in
      let direct = Alloc.times alloc ~model ~platform ~graph:g in
      let tables = Emts_model.Memo.tabulate_graph model platform g in
      let via_tables = Alloc.times_of_tables alloc ~tables in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-12) direct via_tables)

let () =
  Alcotest.run "allocation"
    [
      ( "basics",
        [
          Alcotest.test_case "uniform/ones" `Quick test_uniform_and_ones;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "times" `Quick test_times;
          Alcotest.test_case "times_of_tables" `Quick test_times_of_tables;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_clamp_in_range; prop_tables_match_model ] );
    ]
