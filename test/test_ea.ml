(* Tests for the generic (mu+lambda) evolution strategy. *)

module EA = Emts_ea

(* Toy problem: minimise (x - 7)^2 over float genomes.  sigma must be
   large enough for 30 generations to cross from the seeds to 7. *)
let toy_problem ?(sigma = 5.) () =
  EA.mutation_only
    ~fitness:(fun x -> (x -. 7.) ** 2.)
    ~mutate:(fun rng ~generation:_ ~total_generations:_ x ->
      x +. Emts_prng.normal rng ~mu:0. ~sigma)

let config ?time_budget ?(domains = Testutil.test_domains) ?(mu = 4)
    ?(lambda = 12) ?(generations = 30) () =
  EA.config ?time_budget ~domains ~mu ~lambda ~generations ()

let run ?(seed = 1) ?config:(c = config ()) ?(seeds = [ 100.; -50. ]) () =
  EA.run ~rng:(Emts_prng.create ~seed ()) ~config:c ~seeds (toy_problem ())

let test_converges () =
  let r = run () in
  Alcotest.(check bool) "near optimum" true (r.EA.best_fitness < 4.);
  Alcotest.(check bool) "genome near 7" true (Float.abs (r.EA.best -. 7.) < 2.)

let test_config_validation () =
  let reject label f =
    Alcotest.(check bool) label true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  reject "mu 0" (fun () -> EA.config ~mu:0 ~lambda:1 ~generations:1 ());
  reject "lambda 0" (fun () -> EA.config ~mu:1 ~lambda:0 ~generations:1 ());
  reject "negative generations" (fun () ->
      EA.config ~mu:1 ~lambda:1 ~generations:(-1) ());
  reject "domains 0" (fun () ->
      EA.config ~domains:0 ~mu:1 ~lambda:1 ~generations:1 ());
  reject "bad budget" (fun () ->
      EA.config ~time_budget:0. ~mu:1 ~lambda:1 ~generations:1 ())

let test_empty_seeds_rejected () =
  Alcotest.(check bool) "empty seeds" true
    (try
       ignore
         (EA.run
            ~rng:(Emts_prng.create ())
            ~config:(config ()) ~seeds:[] (toy_problem ()));
       false
     with Invalid_argument _ -> true)

let test_elitism_monotone_history () =
  let r = run () in
  let rec check_monotone : EA.generation_stats list -> unit = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "best never worsens" true
        (b.EA.best <= a.EA.best +. 1e-12);
      check_monotone rest
    | [ _ ] | [] -> ()
  in
  check_monotone r.EA.history

let test_never_worse_than_seeds () =
  let r = run () in
  let seed_best = Float.min ((100. -. 7.) ** 2.) ((-50. -. 7.) ** 2.) in
  Alcotest.(check bool) "<= best seed" true (r.EA.best_fitness <= seed_best)

let test_generation_accounting () =
  let c = config ~mu:3 ~lambda:10 ~generations:5 () in
  let r = run ~config:c () in
  Alcotest.(check int) "evaluations = seeds + U * lambda" (2 + (5 * 10))
    r.EA.evaluations;
  Alcotest.(check int) "history = seeds entry + U" 6 (List.length r.EA.history);
  let last = List.nth r.EA.history 5 in
  Alcotest.(check int) "last generation index" 5 last.EA.generation

let test_zero_generations () =
  let c = config ~generations:0 () in
  let r = run ~config:c () in
  Alcotest.(check int) "only seed evaluations" 2 r.EA.evaluations;
  (* seed fitnesses: (100-7)^2 = 8649 and (-50-7)^2 = 3249 *)
  Alcotest.(check (float 0.)) "best is the better seed" 3249.
    r.EA.best_fitness

let test_determinism () =
  let r1 = run ~seed:42 () and r2 = run ~seed:42 () in
  Alcotest.(check (float 0.)) "same best fitness" r1.EA.best_fitness
    r2.EA.best_fitness;
  Alcotest.(check (float 0.)) "same genome" r1.EA.best r2.EA.best;
  let r3 = run ~seed:43 () in
  Alcotest.(check bool) "different seed, different trajectory" true
    (r1.EA.best <> r3.EA.best)

let test_parallel_eval_equivalent () =
  let sequential = run ~config:(config ~domains:1 ~lambda:16 ()) () in
  let parallel = run ~config:(config ~domains:4 ~lambda:16 ()) () in
  Alcotest.(check (float 0.)) "identical best" sequential.EA.best_fitness
    parallel.EA.best_fitness;
  Alcotest.(check (float 0.)) "identical genome" sequential.EA.best
    parallel.EA.best;
  Alcotest.(check int) "identical evaluation count" sequential.EA.evaluations
    parallel.EA.evaluations;
  Alcotest.(check bool) "bit-identical history" true
    (sequential.EA.history = parallel.EA.history)

let test_time_budget_stops () =
  (* A microscopic budget: the run must stop before its 1000 nominal
     generations. *)
  let c = config ~time_budget:1e-6 ~generations:1000 () in
  let r = run ~config:c () in
  Alcotest.(check bool) "stopped early" true
    (List.length r.EA.history < 1001)

let test_on_generation_callback () =
  let seen = ref [] in
  let c = config ~generations:3 () in
  ignore
    (EA.run
       ~on_generation:(fun s -> seen := s.EA.generation :: !seen)
       ~rng:(Emts_prng.create ~seed:1 ())
       ~config:c ~seeds:[ 0. ] (toy_problem ()));
  Alcotest.(check (list int)) "called for 0..U" [ 0; 1; 2; 3 ] (List.rev !seen)

let test_seed_padding () =
  (* one seed, mu=4: the population pads by reusing the seed. *)
  let c = config ~mu:4 ~generations:1 () in
  let r =
    EA.run
      ~rng:(Emts_prng.create ~seed:2 ())
      ~config:c ~seeds:[ 3. ] (toy_problem ())
  in
  Alcotest.(check bool) "works with fewer seeds than mu" true
    (r.EA.best_fitness <= (3. -. 7.) ** 2.)

let test_seed_padding_uses_best_seed () =
  (* Regression: with mu > #seeds the padded slots must replicate the
     BEST seed, not the worst.  Seeds 10. (fitness 9) and 3. (fitness
     16) with mu = 3: the initial population is {10., 3., 10.}, so the
     generation-0 mean over fitnesses is (9 + 16 + 9) / 3.  The old
     code padded with the worst seed, giving (9 + 16 + 16) / 3. *)
  let c = config ~mu:3 ~generations:0 () in
  let r =
    EA.run
      ~rng:(Emts_prng.create ~seed:2 ())
      ~config:c ~seeds:[ 3.; 10. ] (toy_problem ())
  in
  match r.EA.history with
  | s0 :: _ ->
    Alcotest.(check (float 1e-9)) "mean reflects best-seed padding"
      ((9. +. 16. +. 9.) /. 3.)
      s0.EA.mean;
    Alcotest.(check (float 0.)) "worst survivor is the worst seed" 16.
      s0.EA.worst;
    Alcotest.(check (float 0.)) "best is the best seed" 9. s0.EA.best
  | [] -> Alcotest.fail "empty history"

exception Fitness_failed of int

let test_worker_exception_propagates () =
  (* A fitness exception inside a parallel evaluation must reach the
     caller with every worker domain joined — observable because a
     fresh run on the same process still works afterwards. *)
  let failing =
    EA.mutation_only
      ~fitness:(fun x ->
        if x > 50. then raise (Fitness_failed (int_of_float x));
        (x -. 7.) ** 2.)
      ~mutate:(fun rng ~generation:_ ~total_generations:_ x ->
        x +. Emts_prng.normal rng ~mu:0. ~sigma:5.)
  in
  let c = config ~domains:4 ~mu:4 ~lambda:16 ~generations:2 () in
  let raised =
    try
      ignore
        (EA.run
           ~rng:(Emts_prng.create ~seed:3 ())
           ~config:c
           ~seeds:[ 0.; 10.; 20.; 99. ]
           failing);
      false
    with Fitness_failed _ -> true
  in
  Alcotest.(check bool) "fitness exception propagates" true raised;
  let r = run ~config:(config ~domains:4 ()) () in
  Alcotest.(check bool) "later runs unaffected" true (r.EA.best_fitness < 4.)

let test_stats_fields () =
  let r = run () in
  List.iter
    (fun (s : EA.generation_stats) ->
      Alcotest.(check bool) "best <= mean <= worst" true
        (s.EA.best <= s.EA.mean +. 1e-9 && s.EA.mean <= s.EA.worst +. 1e-9);
      Alcotest.(check bool) "fresh survivors within [0, mu]" true
        (0 <= s.EA.fresh_survivors && s.EA.fresh_survivors <= 4))
    r.EA.history;
  (* the seed-ranking entry counts the whole population as fresh *)
  (match r.EA.history with
  | s0 :: _ -> Alcotest.(check int) "seed generation all fresh" 4 s0.EA.fresh_survivors
  | [] -> Alcotest.fail "empty history")

let test_comma_selection () =
  (* Comma requires lambda >= mu *)
  Alcotest.(check bool) "lambda < mu rejected" true
    (try
       ignore (EA.config ~selection:EA.Comma ~mu:5 ~lambda:3 ~generations:1 ());
       false
     with Invalid_argument _ -> true);
  (* comma runs still return the best individual ever seen *)
  let c = config ~mu:3 ~lambda:12 ~generations:25 () in
  let c = { c with EA.selection = EA.Comma } in
  let r = run ~seed:5 ~config:c () in
  Alcotest.(check bool) "best-ever at least as good as the best seed" true
    (r.EA.best_fitness <= ((-50.) -. 7.) ** 2.);
  Alcotest.(check bool) "still converges on the toy problem" true
    (r.EA.best_fitness < 25.)

let test_comma_population_can_worsen () =
  (* the population best may oscillate under Comma (no elitism), while
     the returned best-ever never exceeds any history entry *)
  let c = config ~mu:2 ~lambda:4 ~generations:40 () in
  let c = { c with EA.selection = EA.Comma } in
  let r = run ~seed:9 ~config:c () in
  let worsened =
    let rec scan = function
      | (a : EA.generation_stats) :: (b :: _ as rest) ->
        b.EA.best > a.EA.best +. 1e-12 || scan rest
      | [ _ ] | [] -> false
    in
    scan r.EA.history
  in
  Alcotest.(check bool) "population best oscillates at least once" true
    worsened;
  List.iter
    (fun (s : EA.generation_stats) ->
      Alcotest.(check bool) "best-ever <= every generation best" true
        (r.EA.best_fitness <= s.EA.best +. 1e-12))
    r.EA.history

(* Lossless float codec for checkpoint tests: %h hex floats
   round-trip every finite double exactly. *)
let float_codec =
  {
    EA.encode = (fun x -> Printf.sprintf "%h" x);
    decode =
      (fun s ->
        match float_of_string_opt s with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "not a float: %S" s));
  }

let with_ckpt_file f =
  let path = Filename.temp_file "emts_ea" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_checkpoint_resume_bit_identical () =
  (* Interrupt at generation k (stop polled at generation boundaries),
     resume from the checkpoint, and demand the exact trajectory of an
     uninterrupted run: same best genome, fitness, history and
     evaluation count. *)
  let generations = 12 in
  let c = config ~mu:4 ~lambda:12 ~generations () in
  let reference = run ~seed:11 ~config:c () in
  List.iter
    (fun k ->
      with_ckpt_file @@ fun path ->
      let ck = EA.checkpoint ~path ~every:1 float_codec in
      let completed = ref (-1) in
      let partial =
        EA.run
          ~on_generation:(fun s -> completed := s.EA.generation)
          ~stop:(fun () -> !completed >= k)
          ~checkpoint:ck
          ~rng:(Emts_prng.create ~seed:11 ())
          ~config:c ~seeds:[ 100.; -50. ] (toy_problem ())
      in
      Alcotest.(check int)
        (Printf.sprintf "k=%d: stopped after generation k" k)
        (k + 1)
        (List.length partial.EA.history);
      match EA.resume ~from:ck ~config:c (toy_problem ()) with
      | Error msg -> Alcotest.fail (Printf.sprintf "k=%d: %s" k msg)
      | Ok r ->
        Alcotest.(check (float 0.))
          (Printf.sprintf "k=%d: best fitness" k)
          reference.EA.best_fitness r.EA.best_fitness;
        Alcotest.(check (float 0.))
          (Printf.sprintf "k=%d: best genome" k)
          reference.EA.best r.EA.best;
        Alcotest.(check int)
          (Printf.sprintf "k=%d: evaluations" k)
          reference.EA.evaluations r.EA.evaluations;
        Alcotest.(check bool)
          (Printf.sprintf "k=%d: bit-identical history" k)
          true
          (r.EA.history = reference.EA.history))
    [ 0; 1; generations / 2; generations ]

let test_checkpoint_resume_parallel () =
  (* The resume guarantee must hold under parallel evaluation too. *)
  let c = config ~domains:4 ~mu:4 ~lambda:16 ~generations:8 () in
  let reference = run ~seed:21 ~config:c () in
  with_ckpt_file @@ fun path ->
  let ck = EA.checkpoint ~path ~every:2 float_codec in
  let completed = ref (-1) in
  ignore
    (EA.run
       ~on_generation:(fun s -> completed := s.EA.generation)
       ~stop:(fun () -> !completed >= 4)
       ~checkpoint:ck
       ~rng:(Emts_prng.create ~seed:21 ())
       ~config:c ~seeds:[ 100.; -50. ] (toy_problem ()));
  match EA.resume ~from:ck ~config:c (toy_problem ()) with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    Alcotest.(check (float 0.)) "best fitness" reference.EA.best_fitness
      r.EA.best_fitness;
    Alcotest.(check bool) "bit-identical history" true
      (r.EA.history = reference.EA.history)

let test_resume_rejects_mismatched_config () =
  let c = config ~mu:4 ~lambda:12 ~generations:4 () in
  with_ckpt_file @@ fun path ->
  let ck = EA.checkpoint ~path ~every:1 float_codec in
  ignore
    (EA.run ~checkpoint:ck
       ~rng:(Emts_prng.create ~seed:31 ())
       ~config:c ~seeds:[ 100.; -50. ] (toy_problem ()));
  let mismatched = config ~mu:5 ~lambda:12 ~generations:4 () in
  (match EA.resume ~from:ck ~config:mismatched (toy_problem ()) with
  | Ok _ -> Alcotest.fail "mu mismatch accepted"
  | Error msg ->
    Alcotest.(check bool) "error names the file" true
      (Testutil.contains_substring msg path));
  (* A corrupted checkpoint file is a clean error, not an exception. *)
  let raw = In_channel.with_open_bin path In_channel.input_all in
  let broken = Bytes.of_string raw in
  Bytes.set broken (Bytes.length broken / 2) '#';
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc broken);
  match EA.resume ~from:ck ~config:c (toy_problem ()) with
  | Ok _ -> Alcotest.fail "corrupt checkpoint accepted"
  | Error _ -> ()

let test_stop_flag_halts () =
  (* stop = always true: only the seed ranking happens, and the exit
     checkpoint is still written so the run can resume. *)
  let c = config ~generations:30 () in
  with_ckpt_file @@ fun path ->
  let ck = EA.checkpoint ~path ~every:5 float_codec in
  let r =
    EA.run
      ~stop:(fun () -> true)
      ~checkpoint:ck
      ~rng:(Emts_prng.create ~seed:41 ())
      ~config:c ~seeds:[ 100.; -50. ] (toy_problem ())
  in
  Alcotest.(check int) "only the seed ranking ran" 1
    (List.length r.EA.history);
  Alcotest.(check bool) "checkpoint written" true (Sys.file_exists path)

let test_default_domains () =
  let d = EA.default_domains () in
  Alcotest.(check bool) "in [1, 8]" true (1 <= d && d <= 8)

(* {1 Island mode} *)

let island_config ?(domains = 1) ?(mu = 4) ?(lambda = 8) ?(generations = 12)
    ?(islands = 3) ?(migration_interval = 3) ?(migration_count = 1) () =
  EA.config ~domains ~islands ~migration_interval ~migration_count ~mu ~lambda
    ~generations ()

let test_island_config_validation () =
  let reject label f =
    Alcotest.(check bool) label true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  reject "islands 0" (fun () -> island_config ~islands:0 ());
  reject "interval 0" (fun () -> island_config ~migration_interval:0 ());
  reject "negative count" (fun () -> island_config ~migration_count:(-1) ());
  reject "count > mu" (fun () ->
      island_config ~mu:3 ~migration_count:4 ())

let test_island_accounting () =
  (* k islands each draw lambda offspring per generation, all evaluated
     in one flat batch: evaluations = seeds + U * k * lambda, and the
     history still has one union entry per generation. *)
  let c = island_config ~islands:3 ~lambda:8 ~generations:5 () in
  let r = run ~seed:7 ~config:c () in
  Alcotest.(check int) "evaluations = seeds + U * k * lambda"
    (2 + (5 * 3 * 8))
    r.EA.evaluations;
  Alcotest.(check int) "history = seeds entry + U" 6
    (List.length r.EA.history)

let test_island_elitism () =
  (* Plus selection is elitist per island, and the union best is the
     min over islands, so the recorded best never worsens. *)
  let r = run ~seed:13 ~config:(island_config ()) () in
  let rec check = function
    | (a : EA.generation_stats) :: (b :: _ as rest) ->
      Alcotest.(check bool) "union best never worsens" true
        (b.EA.best <= a.EA.best +. 1e-12);
      check rest
    | [ _ ] | [] -> ()
  in
  check r.EA.history;
  Alcotest.(check bool) "still converges" true (r.EA.best_fitness < 4.)

let test_island_domains_invariant () =
  (* Offspring are drawn from per-island streams before any evaluation,
     so the trajectory cannot depend on how the flat batch is spread
     over worker domains. *)
  let seq = run ~seed:19 ~config:(island_config ~domains:1 ()) () in
  let par = run ~seed:19 ~config:(island_config ~domains:4 ()) () in
  Alcotest.(check (float 0.)) "identical best" seq.EA.best_fitness
    par.EA.best_fitness;
  Alcotest.(check (float 0.)) "identical genome" seq.EA.best par.EA.best;
  Alcotest.(check bool) "bit-identical history" true
    (seq.EA.history = par.EA.history)

let test_island_migration_changes_trajectory () =
  (* Migration must actually move individuals: with every other
     parameter fixed, isolated islands (count = 0) and a migrating ring
     explore differently.  (Equal outcomes would mean the exchange is a
     no-op.) *)
  let isolated =
    run ~seed:23 ~config:(island_config ~migration_count:0 ()) ()
  in
  let ring =
    run ~seed:23
      ~config:(island_config ~migration_interval:1 ~migration_count:2 ())
      ()
  in
  Alcotest.(check bool) "distinct history" true
    (isolated.EA.history <> ring.EA.history)

let test_island_checkpoint_rejected () =
  with_ckpt_file @@ fun path ->
  let ck = EA.checkpoint ~path ~every:1 float_codec in
  Alcotest.(check bool) "run with checkpoint rejected" true
    (try
       ignore
         (EA.run ~checkpoint:ck
            ~rng:(Emts_prng.create ~seed:3 ())
            ~config:(island_config ()) ~seeds:[ 100.; -50. ] (toy_problem ()));
       false
     with Invalid_argument _ -> true);
  (* resume with an island config is a typed error, not an exception *)
  ignore
    (EA.run ~checkpoint:ck
       ~rng:(Emts_prng.create ~seed:3 ())
       ~config:(config ~generations:2 ())
       ~seeds:[ 100.; -50. ] (toy_problem ()));
  match EA.resume ~from:ck ~config:(island_config ()) (toy_problem ()) with
  | Ok _ -> Alcotest.fail "island resume accepted"
  | Error _ -> ()

(* Property: island runs are a pure function of
   (seed, islands, interval, count) — repeating a run is bit-identical,
   and parallel evaluation cannot change it. *)
let prop_island_determinism =
  QCheck.Test.make ~name:"island runs deterministic and domain-invariant"
    ~count:25
    QCheck.(
      quad (int_range 2 4) (int_range 1 4) (int_range 0 2) small_int)
    (fun (islands, migration_interval, migration_count, seed) ->
      let go domains =
        EA.run
          ~rng:(Emts_prng.create ~seed ())
          ~config:
            (island_config ~domains ~islands ~migration_interval
               ~migration_count ~generations:6 ())
          ~seeds:[ 50.; -10.; 3. ] (toy_problem ())
      in
      let a = go 1 and b = go 1 and c = go 3 in
      a.EA.best = b.EA.best
      && a.EA.best_fitness = b.EA.best_fitness
      && a.EA.history = b.EA.history
      && a.EA.history = c.EA.history
      && a.EA.best = c.EA.best
      && a.EA.evaluations = 3 + (6 * islands * 8))

(* Property: for any toy configuration the invariants hold. *)
let prop_invariants =
  QCheck.Test.make ~name:"EA invariants across configurations" ~count:50
    QCheck.(
      quad (int_range 1 6) (int_range 1 20) (int_range 0 10) small_int)
    (fun (mu, lambda, generations, seed) ->
      let c = EA.config ~mu ~lambda ~generations () in
      let r =
        EA.run
          ~rng:(Emts_prng.create ~seed ())
          ~config:c ~seeds:[ 50.; -10.; 3. ] (toy_problem ())
      in
      r.EA.evaluations = 3 + (generations * lambda)
      && r.EA.best_fitness <= (3. -. 7.) ** 2.
      && List.length r.EA.history = generations + 1)

let () =
  Alcotest.run "ea"
    [
      ( "behaviour",
        [
          Alcotest.test_case "converges" `Quick test_converges;
          Alcotest.test_case "elitism" `Quick test_elitism_monotone_history;
          Alcotest.test_case "never worse than seeds" `Quick
            test_never_worse_than_seeds;
          Alcotest.test_case "accounting" `Quick test_generation_accounting;
          Alcotest.test_case "zero generations" `Quick test_zero_generations;
          Alcotest.test_case "seed padding" `Quick test_seed_padding;
          Alcotest.test_case "seed padding uses best seed" `Quick
            test_seed_padding_uses_best_seed;
          Alcotest.test_case "stats ordering" `Quick test_stats_fields;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed same result" `Quick test_determinism;
          Alcotest.test_case "parallel = sequential" `Quick
            test_parallel_eval_equivalent;
        ] );
      ( "control",
        [
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "empty seeds" `Quick test_empty_seeds_rejected;
          Alcotest.test_case "time budget" `Quick test_time_budget_stops;
          Alcotest.test_case "callback" `Quick test_on_generation_callback;
          Alcotest.test_case "comma selection" `Quick test_comma_selection;
          Alcotest.test_case "comma oscillation" `Quick
            test_comma_population_can_worsen;
          Alcotest.test_case "worker exception" `Quick
            test_worker_exception_propagates;
          Alcotest.test_case "default domains" `Quick test_default_domains;
        ] );
      ( "checkpointing",
        [
          Alcotest.test_case "resume is bit-identical" `Quick
            test_checkpoint_resume_bit_identical;
          Alcotest.test_case "resume under parallel eval" `Quick
            test_checkpoint_resume_parallel;
          Alcotest.test_case "mismatch and corruption rejected" `Quick
            test_resume_rejects_mismatched_config;
          Alcotest.test_case "stop flag" `Quick test_stop_flag_halts;
        ] );
      ( "islands",
        [
          Alcotest.test_case "config validation" `Quick
            test_island_config_validation;
          Alcotest.test_case "accounting" `Quick test_island_accounting;
          Alcotest.test_case "elitism" `Quick test_island_elitism;
          Alcotest.test_case "domain invariance" `Quick
            test_island_domains_invariant;
          Alcotest.test_case "migration moves individuals" `Quick
            test_island_migration_changes_trajectory;
          Alcotest.test_case "checkpointing rejected" `Quick
            test_island_checkpoint_rejected;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_invariants;
          QCheck_alcotest.to_alcotest prop_island_determinism;
        ] );
    ]
