(* Tests for the .ptg serialisation format and the DOT exporter. *)

module Graph = Emts_ptg.Graph
module Task = Emts_ptg.Task
module Serial = Emts_ptg.Serial
module Dot = Emts_ptg.Dot

let graph_equal a b =
  Graph.equal_structure a b
  && Array.for_all2 Task.equal (Graph.tasks a) (Graph.tasks b)

let test_round_trip_diamond () =
  let g = Testutil.diamond_graph () in
  match Serial.of_string (Serial.to_string g) with
  | Ok g' -> Alcotest.(check bool) "identical" true (graph_equal g g')
  | Error e -> Alcotest.fail e

let test_round_trip_rich_tasks () =
  let b = Graph.Builder.create () in
  let a =
    Graph.Builder.add_task ~name:"alpha" ~data_size:1.25e7 ~alpha:0.125
      ~pattern:Task.Sort ~flop:3.5e9 b
  in
  let c =
    Graph.Builder.add_task ~name:"beta" ~data_size:0.1 ~alpha:0.99999
      ~pattern:Task.Matmul ~flop:1e-3 b
  in
  Graph.Builder.add_edge b ~src:a ~dst:c;
  let g = Graph.Builder.build b in
  match Serial.of_string (Serial.to_string g) with
  | Ok g' -> Alcotest.(check bool) "floats exact" true (graph_equal g g')
  | Error e -> Alcotest.fail e

let test_comments_and_blanks () =
  let text =
    "# header comment\n\nptg v1\n  task 0 1 0 0 direct solo  \n\n# done\n"
  in
  match Serial.of_string text with
  | Ok g ->
    Alcotest.(check int) "one task" 1 (Graph.task_count g);
    Alcotest.(check string) "name" "solo" (Graph.task g 0).Task.name
  | Error e -> Alcotest.fail e

let expect_error label text =
  match Serial.of_string text with
  | Ok _ -> Alcotest.fail (label ^ ": expected parse failure")
  | Error _ -> ()

let test_malformed_inputs () =
  expect_error "missing header" "task 0 1 0 0 direct t0\n";
  expect_error "bad version" "ptg v9\n";
  expect_error "non-dense ids" "ptg v1\ntask 1 1 0 0 direct t1\n";
  expect_error "bad pattern" "ptg v1\ntask 0 1 0 0 mystery t0\n";
  expect_error "malformed task" "ptg v1\ntask 0 one 0 0 direct t0\n";
  expect_error "edge to unknown node" "ptg v1\ntask 0 1 0 0 direct t0\nedge 0 7\n";
  expect_error "malformed edge" "ptg v1\ntask 0 1 0 0 direct t0\nedge 0 x\n";
  expect_error "unknown record" "ptg v1\nnode 0\n";
  expect_error "alpha out of range" "ptg v1\ntask 0 1 0 2.0 direct t0\n"

let test_cyclic_file_rejected () =
  let text =
    "ptg v1\ntask 0 1 0 0 direct a\ntask 1 1 0 0 direct b\nedge 0 1\nedge 1 0\n"
  in
  match Serial.of_string text with
  | Ok _ -> Alcotest.fail "cycle accepted"
  | Error msg ->
    Alcotest.(check bool)
      "mentions cycle" true
      (String.length msg > 0
      && String.lowercase_ascii msg |> fun s ->
         String.length s >= 5 && String.sub s 0 5 = "graph")

let test_save_load () =
  let g = Emts_daggen.Fft.generate ~points:4 in
  let path = Filename.temp_file "emts_ptg" ".ptg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serial.save g path;
      match Serial.load path with
      | Ok g' -> Alcotest.(check bool) "load = save" true (graph_equal g g')
      | Error e -> Alcotest.fail (Emts_resilience.Error.to_string e))

let test_load_missing () =
  match Serial.load "/nonexistent/file.ptg" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e ->
    let msg = Emts_resilience.Error.to_string e in
    Alcotest.(check bool) "names the file" true
      (Testutil.contains_substring msg "/nonexistent/file.ptg")

let test_load_malformed_diagnostic () =
  let path = Filename.temp_file "emts_ptg" ".ptg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Emts_resilience.write_string ~path
        "ptg v1\ntask 0 1 0 0 direct a\ntask 1 one 0 0 direct b\n";
      match Serial.load path with
      | Ok _ -> Alcotest.fail "malformed file accepted"
      | Error e ->
        Alcotest.(check (option int)) "line number" (Some 3) e.line;
        Alcotest.(check string) "file" path e.file;
        let msg = Emts_resilience.Error.to_string e in
        Alcotest.(check bool) "one-line 'file: line N: msg' shape" true
          (Testutil.contains_substring msg (path ^ ": line 3:")
          && not (String.contains msg '\n')))

let test_dot_output () =
  let g = Testutil.diamond_graph () in
  let dot = Dot.to_dot ~graph_name:"d" g in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 10 && String.sub dot 0 9 = "digraph d");
  (* one node line per task, one edge line per edge *)
  let count_substring needle hay =
    let n = String.length needle and h = String.length hay in
    let hits = ref 0 in
    for i = 0 to h - n do
      if String.sub hay i n = needle then incr hits
    done;
    !hits
  in
  Alcotest.(check int) "edges rendered" 4 (count_substring " -> " dot);
  Alcotest.(check int) "nodes rendered" 4 (count_substring "label=" dot)

let test_dot_escaping () =
  let b = Graph.Builder.create () in
  ignore (Graph.Builder.add_task ~name:"we\"ird\\name" ~flop:1. b);
  let g = Graph.Builder.build b in
  let dot = Dot.to_dot ~label:(fun t -> t.Task.name) g in
  Alcotest.(check bool) "escaped quote present" true
    (let needle = "we\\\"ird" in
     let n = String.length needle in
     let found = ref false in
     for i = 0 to String.length dot - n do
       if String.sub dot i n = needle then found := true
     done;
     !found)

let prop_round_trip =
  QCheck.Test.make ~name:".ptg round-trip on random DAGs" ~count:150
    (Testutil.arbitrary_dag ())
    (fun g ->
      match Serial.of_string (Serial.to_string g) with
      | Ok g' -> graph_equal g g'
      | Error _ -> false)

let () =
  Alcotest.run "serial"
    [
      ( "round trip",
        [
          Alcotest.test_case "diamond" `Quick test_round_trip_diamond;
          Alcotest.test_case "rich tasks" `Quick test_round_trip_rich_tasks;
          Alcotest.test_case "comments/blanks" `Quick test_comments_and_blanks;
          Alcotest.test_case "save/load" `Quick test_save_load;
        ] );
      ( "errors",
        [
          Alcotest.test_case "malformed inputs" `Quick test_malformed_inputs;
          Alcotest.test_case "cyclic file" `Quick test_cyclic_file_rejected;
          Alcotest.test_case "missing file" `Quick test_load_missing;
          Alcotest.test_case "malformed file diagnostic" `Quick
            test_load_malformed_diagnostic;
        ] );
      ( "dot",
        [
          Alcotest.test_case "structure" `Quick test_dot_output;
          Alcotest.test_case "escaping" `Quick test_dot_escaping;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_round_trip ]);
    ]
