(* Tests for Emts_daggen: FFT, Strassen, shapes, the random DAGGEN-style
   generator and cost assignment. *)

module Graph = Emts_ptg.Graph
module Task = Emts_ptg.Task
module D = Emts_daggen

(* --- FFT --- *)

let test_fft_paper_sizes () =
  (* The paper: 2, 4, 8, 16 "levels" -> 5, 15, 39, 95 tasks. *)
  List.iter2
    (fun points expected ->
      Alcotest.(check int)
        (Printf.sprintf "fft %d closed form" points)
        expected
        (D.Fft.task_count ~points);
      Alcotest.(check int)
        (Printf.sprintf "fft %d generated" points)
        expected
        (Graph.task_count (D.Fft.generate ~points)))
    D.Fft.paper_sizes [ 5; 15; 39; 95 ]

let test_fft_structure () =
  let g = D.Fft.generate ~points:8 in
  (* single source (tree root), 8 sinks (last butterfly stage) *)
  Alcotest.(check int) "one source" 1 (List.length (Graph.sources g));
  Alcotest.(check int) "points sinks" 8 (List.length (Graph.sinks g));
  (* levels: tree depth log2(8)=3 plus 3 butterfly stages + root = 7 *)
  Alcotest.(check int) "levels" 7 (Graph.level_count g);
  (* butterfly nodes have in-degree 2; tree leaves in-degree 1 *)
  List.iter
    (fun v -> Alcotest.(check int) "sink in-degree" 2 (Graph.in_degree g v))
    (Graph.sinks g)

let test_fft_invalid () =
  List.iter
    (fun points ->
      Alcotest.(check bool)
        (Printf.sprintf "points=%d rejected" points)
        true
        (try
           ignore (D.Fft.generate ~points);
           false
         with Invalid_argument _ -> true))
    [ 0; 1; 3; 6; -4 ]

(* --- Strassen --- *)

let test_strassen_shape () =
  let g = D.Strassen.generate () in
  Alcotest.(check int) "23 tasks" D.Strassen.task_count (Graph.task_count g);
  Alcotest.(check int) "one source" 1 (List.length (Graph.sources g));
  Alcotest.(check int) "one sink" 1 (List.length (Graph.sinks g));
  Alcotest.(check int) "5 levels" 5 (Graph.level_count g);
  (* 7 product tasks at level 2 *)
  Alcotest.(check int) "7 products" 7
    (List.length (Graph.nodes_at_level g 2));
  (* 4 combines at level 3 *)
  Alcotest.(check int) "4 combines" 4
    (List.length (Graph.nodes_at_level g 3));
  (* 10 additions at level 1 *)
  Alcotest.(check int) "10 sums" 10 (List.length (Graph.nodes_at_level g 1))

let test_strassen_dependencies () =
  let g = D.Strassen.generate () in
  let id_of name =
    let found = ref (-1) in
    for v = 0 to Graph.task_count g - 1 do
      if (Graph.task g v).Task.name = name then found := v
    done;
    Alcotest.(check bool) ("task " ^ name ^ " exists") true (!found >= 0);
    !found
  in
  let split = id_of "split" and sa2 = id_of "SA2" and m2 = id_of "M2" in
  let m1 = id_of "M1" and sa1 = id_of "SA1" and sb1 = id_of "SB1" in
  let c21 = id_of "C21" and m4 = id_of "M4" in
  (* M2 = SA2 * B11: depends on SA2 and directly on split (raw B11) *)
  Alcotest.(check bool) "M2 <- SA2" true (Graph.has_edge g ~src:sa2 ~dst:m2);
  Alcotest.(check bool) "M2 <- split" true (Graph.has_edge g ~src:split ~dst:m2);
  (* M1 = SA1 * SB1: both operands prepared, no direct split edge *)
  Alcotest.(check bool) "M1 <- SA1" true (Graph.has_edge g ~src:sa1 ~dst:m1);
  Alcotest.(check bool) "M1 <- SB1" true (Graph.has_edge g ~src:sb1 ~dst:m1);
  Alcotest.(check bool) "M1 not directly from split" false
    (Graph.has_edge g ~src:split ~dst:m1);
  (* C21 = M2 + M4 *)
  Alcotest.(check bool) "C21 <- M2" true (Graph.has_edge g ~src:m2 ~dst:c21);
  Alcotest.(check bool) "C21 <- M4" true (Graph.has_edge g ~src:m4 ~dst:c21);
  Alcotest.(check int) "C21 in-degree 2" 2 (Graph.in_degree g c21)

let test_strassen_weighted () =
  let d = 4096. *. 4096. in
  let g = D.Strassen.weighted ~d in
  (* product tasks dominate: (d/4)^1.5 each *)
  let product_cost = (d /. 4.) ** 1.5 in
  let m_tasks =
    List.filter
      (fun v ->
        let name = (Graph.task g v).Task.name in
        String.length name = 2 && name.[0] = 'M')
      (List.init (Graph.task_count g) Fun.id)
  in
  Alcotest.(check int) "7 M tasks" 7 (List.length m_tasks);
  List.iter
    (fun v ->
      Alcotest.(check (float 1.))
        "product cost" product_cost (Graph.task g v).Task.flop)
    m_tasks;
  Alcotest.(check bool)
    "d out of range rejected" true
    (try
       ignore (D.Strassen.weighted ~d:0.);
       false
     with Invalid_argument _ -> true)

(* --- Shapes --- *)

let test_shapes () =
  let chain = D.Shapes.chain 5 in
  Alcotest.(check int) "chain levels" 5 (Graph.level_count chain);
  Alcotest.(check int) "chain width" 1 (Graph.max_level_width chain);
  let fj = D.Shapes.fork_join 7 in
  Alcotest.(check int) "fork-join tasks" 9 (Graph.task_count fj);
  Alcotest.(check int) "fork-join width" 7 (Graph.max_level_width fj);
  let dia = D.Shapes.diamond 3 in
  Alcotest.(check int) "diamond tasks" 8 (Graph.task_count dia);
  Alcotest.(check int) "diamond edges" (3 + 9 + 3) (Graph.edge_count dia);
  let ind = D.Shapes.independent 4 in
  Alcotest.(check int) "independent edges" 0 (Graph.edge_count ind);
  Alcotest.(check int) "independent width" 4 (Graph.max_level_width ind);
  let mesh = D.Shapes.layered_mesh ~layers:3 ~width:4 in
  Alcotest.(check int) "mesh tasks" 12 (Graph.task_count mesh);
  Alcotest.(check int) "mesh edges" 32 (Graph.edge_count mesh);
  Alcotest.(check bool)
    "size 0 rejected" true
    (try
       ignore (D.Shapes.chain 0);
       false
     with Invalid_argument _ -> true)

(* --- Random DAGs --- *)

let params ?(n = 50) ?(width = 0.5) ?(regularity = 0.5) ?(density = 0.3)
    ?(jump = 0) () =
  { D.Random_dag.n; width; regularity; density; jump }

let test_random_exact_task_count () =
  let rng = Emts_prng.create ~seed:1 () in
  List.iter
    (fun n ->
      let g = D.Random_dag.generate rng (params ~n ()) in
      Alcotest.(check int) (Printf.sprintf "n=%d" n) n (Graph.task_count g))
    [ 1; 2; 20; 50; 100 ]

let test_random_determinism () =
  let g1 =
    D.Random_dag.generate (Emts_prng.create ~seed:5 ()) (params ~jump:2 ())
  in
  let g2 =
    D.Random_dag.generate (Emts_prng.create ~seed:5 ()) (params ~jump:2 ())
  in
  Alcotest.(check bool) "same seed, same graph" true
    (Graph.equal_structure g1 g2)

let test_layered_edges_adjacent_only () =
  let rng = Emts_prng.create ~seed:2 () in
  for _ = 1 to 20 do
    let g = D.Random_dag.generate rng (params ~jump:0 ~density:0.8 ()) in
    let level = Graph.precedence_level g in
    List.iter
      (fun (src, dst) ->
        Alcotest.(check int)
          "edge spans exactly one level" 1
          (level.(dst) - level.(src)))
      (Graph.edges g)
  done

let test_jump_bounds_span () =
  let rng = Emts_prng.create ~seed:3 () in
  let jump = 2 in
  for _ = 1 to 20 do
    let g = D.Random_dag.generate rng (params ~jump ~density:0.5 ()) in
    let level = Graph.precedence_level g in
    List.iter
      (fun (src, dst) ->
        let span = level.(dst) - level.(src) in
        Alcotest.(check bool) "span within 1..jump+1" true
          (1 <= span && span <= jump + 1))
      (Graph.edges g)
  done

let test_width_controls_parallelism () =
  let rng = Emts_prng.create ~seed:4 () in
  let widths w =
    let acc = ref 0 in
    for _ = 1 to 10 do
      acc :=
        !acc
        + Graph.max_level_width
            (D.Random_dag.generate rng (params ~n:100 ~width:w ~regularity:0.8 ()))
    done;
    !acc
  in
  Alcotest.(check bool) "wider parameter, wider graphs" true
    (widths 0.8 > widths 0.2)

let test_validate () =
  Alcotest.(check bool) "good params" true
    (D.Random_dag.validate (params ()) = Ok (params ()));
  let bad p = match D.Random_dag.validate p with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "n=0" true (bad { (params ()) with n = 0 });
  Alcotest.(check bool) "width 0" true (bad { (params ()) with width = 0. });
  Alcotest.(check bool) "width > 1" true (bad { (params ()) with width = 1.5 });
  Alcotest.(check bool) "regularity" true
    (bad { (params ()) with regularity = -0.1 });
  Alcotest.(check bool) "density" true (bad { (params ()) with density = 2. });
  Alcotest.(check bool) "jump" true (bad { (params ()) with jump = -1 })

let test_paper_grids () =
  Alcotest.(check int) "layered grid" 36
    (List.length D.Random_dag.paper_layered);
  Alcotest.(check int) "irregular grid" 108
    (List.length D.Random_dag.paper_irregular);
  List.iter
    (fun (_, p) ->
      Alcotest.(check int) "layered jump 0" 0 p.D.Random_dag.jump)
    D.Random_dag.paper_layered;
  List.iter
    (fun (_, p) ->
      Alcotest.(check bool) "irregular jump in {1,2,4}" true
        (List.mem p.D.Random_dag.jump [ 1; 2; 4 ]))
    D.Random_dag.paper_irregular

(* --- Costs --- *)

let test_costs_ranges () =
  let rng = Emts_prng.create ~seed:6 () in
  let g = D.Costs.assign rng (D.Shapes.independent 200) in
  Array.iter
    (fun (t : Task.t) ->
      Alcotest.(check bool) "d range" true
        (1e6 <= t.data_size && t.data_size <= Task.max_data_size);
      Alcotest.(check bool) "alpha range" true
        (0. <= t.alpha && t.alpha <= 0.25);
      Alcotest.(check bool) "pattern drawn" true (t.pattern <> Task.Direct);
      Alcotest.(check bool) "flop positive" true (t.flop > 0.);
      (* flop is consistent with the drawn pattern *)
      match t.pattern with
      | Task.Matmul ->
        Alcotest.(check (float 1.)) "matmul cost" (t.data_size ** 1.5) t.flop
      | Task.Stencil ->
        let a = t.flop /. t.data_size in
        Alcotest.(check bool) "stencil a in [2^6, 2^9]" true
          (64. -. 1e-6 <= a && a <= 512. +. 1e-6)
      | Task.Sort | Task.Direct -> ())
    (Graph.tasks g)

let test_costs_preserve_structure () =
  let rng = Emts_prng.create ~seed:7 () in
  let g = D.Fft.generate ~points:8 in
  let g' = D.Costs.assign rng g in
  Alcotest.(check bool) "structure kept" true (Graph.equal_structure g g')

let test_costs_spec_validation () =
  let rng = Emts_prng.create ~seed:8 () in
  let g = D.Shapes.chain 2 in
  let bad_spec = { D.Costs.default with d_min = 0. } in
  Alcotest.(check bool) "bad spec rejected" true
    (try
       ignore (D.Costs.assign ~spec:bad_spec rng g);
       false
     with Invalid_argument _ -> true)

let test_assign_alpha_only () =
  let rng = Emts_prng.create ~seed:9 () in
  let g = D.Strassen.weighted ~d:1e6 in
  let g' = D.Costs.assign_alpha_only ~alpha_min:0.1 ~alpha_max:0.2 rng g in
  Array.iter2
    (fun (a : Task.t) (b : Task.t) ->
      Alcotest.(check (float 0.)) "flop unchanged" a.flop b.flop;
      Alcotest.(check bool) "alpha in range" true
        (0.1 <= b.alpha && b.alpha <= 0.2))
    (Graph.tasks g) (Graph.tasks g')

let prop_random_dag_level_count =
  QCheck.Test.make ~name:"generated graphs have >= 1 task per level"
    ~count:100
    QCheck.(
      make
        Gen.(
          quad (int_range 1 80) (float_range 0.1 1.0) (float_range 0. 1.)
            (int_range 0 4)))
    (fun (n, width, density, jump) ->
      let rng = Emts_prng.create ~seed:(n + jump) () in
      let g =
        D.Random_dag.generate rng
          { n; width; regularity = 0.5; density; jump }
      in
      Graph.task_count g = n
      && Graph.level_count g >= 1
      && Graph.level_count g <= n)

let () =
  Alcotest.run "daggen"
    [
      ( "fft",
        [
          Alcotest.test_case "paper sizes" `Quick test_fft_paper_sizes;
          Alcotest.test_case "structure" `Quick test_fft_structure;
          Alcotest.test_case "invalid points" `Quick test_fft_invalid;
        ] );
      ( "strassen",
        [
          Alcotest.test_case "shape" `Quick test_strassen_shape;
          Alcotest.test_case "dependencies" `Quick test_strassen_dependencies;
          Alcotest.test_case "weighted" `Quick test_strassen_weighted;
        ] );
      ("shapes", [ Alcotest.test_case "all shapes" `Quick test_shapes ]);
      ( "random",
        [
          Alcotest.test_case "task count" `Quick test_random_exact_task_count;
          Alcotest.test_case "determinism" `Quick test_random_determinism;
          Alcotest.test_case "layered adjacency" `Quick
            test_layered_edges_adjacent_only;
          Alcotest.test_case "jump bound" `Quick test_jump_bounds_span;
          Alcotest.test_case "width effect" `Quick
            test_width_controls_parallelism;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "paper grids" `Quick test_paper_grids;
        ] );
      ( "costs",
        [
          Alcotest.test_case "ranges" `Quick test_costs_ranges;
          Alcotest.test_case "structure preserved" `Quick
            test_costs_preserve_structure;
          Alcotest.test_case "spec validation" `Quick
            test_costs_spec_validation;
          Alcotest.test_case "alpha only" `Quick test_assign_alpha_only;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_random_dag_level_count ]);
    ]
