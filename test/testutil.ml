(* Shared helpers for the test suite: hand-built graphs with known
   analytic answers and QCheck generators for random PTG inputs. *)

module Graph = Emts_ptg.Graph

(* Diamond with asymmetric costs:

        0 (10 FLOP)
       / \
      1   2      (20 / 30 FLOP)
       \ /
        3 (40 FLOP)

   With unit-speed sequential times t(v) = cost, bottom levels are
   bl3 = 40, bl1 = 60, bl2 = 70, bl0 = 80; critical path 0-2-3. *)
let diamond_graph () =
  let b = Graph.Builder.create () in
  let t0 = Graph.Builder.add_task ~flop:10. b in
  let t1 = Graph.Builder.add_task ~flop:20. b in
  let t2 = Graph.Builder.add_task ~flop:30. b in
  let t3 = Graph.Builder.add_task ~flop:40. b in
  List.iter
    (fun (src, dst) -> Graph.Builder.add_edge b ~src ~dst)
    [ (t0, t1); (t0, t2); (t1, t3); (t2, t3) ];
  Graph.Builder.build b

(* Two independent chains of two tasks: 0->1, 2->3 (no shared nodes). *)
let two_chains_graph () =
  let b = Graph.Builder.create () in
  let ids = Array.init 4 (fun _ -> Graph.Builder.add_task ~flop:1. b) in
  Graph.Builder.add_edge b ~src:ids.(0) ~dst:ids.(1);
  Graph.Builder.add_edge b ~src:ids.(2) ~dst:ids.(3);
  Graph.Builder.build b

(* The paper's Figure 2 shape: five nodes, two levels of parallelism. *)
let figure2_graph () =
  let b = Graph.Builder.create () in
  let n1 = Graph.Builder.add_task ~flop:1. b in
  let n2 = Graph.Builder.add_task ~flop:1. b in
  let n3 = Graph.Builder.add_task ~flop:1. b in
  let n4 = Graph.Builder.add_task ~flop:1. b in
  let n5 = Graph.Builder.add_task ~flop:1. b in
  List.iter
    (fun (src, dst) -> Graph.Builder.add_edge b ~src ~dst)
    [ (n1, n2); (n1, n3); (n2, n4); (n3, n4); (n3, n5) ];
  Graph.Builder.build b

let const_time t _ = t
let unit_speed_times g = fun v -> (Graph.task g v).Emts_ptg.Task.flop

(* Random graph constructors live in Emts_check.Gen so the fuzzing
   harness and the alcotest suites draw from one implementation; the
   aliases keep existing call sites stable. *)
let random_triangular_dag = Emts_check.Gen.random_triangular_dag
let costed_daggen = Emts_check.Gen.costed_daggen

(* QCheck generator of (graph, seed): graphs of 1..max_n tasks. *)
let gen_dag ?(max_n = 25) () =
  QCheck.Gen.(
    pair (int_range 1 max_n) (pair int (float_range 0.05 0.5))
    >|= fun (n, (seed, p)) ->
    let rng = Emts_prng.create ~seed () in
    random_triangular_dag rng ~n ~p)

let arbitrary_dag ?max_n () =
  QCheck.make
    ~print:(fun g -> Format.asprintf "%a" Graph.pp_stats g)
    (gen_dag ?max_n ())

(* Graph plus a valid random allocation for a platform of [procs]. *)
let arbitrary_dag_alloc ~procs ?max_n () =
  QCheck.make
    ~print:(fun (g, alloc) ->
      Format.asprintf "%a / %a" Graph.pp_stats g Emts_sched.Allocation.pp
        alloc)
    QCheck.Gen.(
      pair (gen_dag ?max_n ()) int >|= fun (g, seed) ->
      let rng = Emts_prng.create ~seed () in
      (g, Emts_check.Gen.random_valid_alloc rng g ~procs))

(* A full random fuzzing scenario (graph, platform size, model, seed),
   wrapped as a QCheck arbitrary so property suites can range over the
   same adversarial input distribution as [emts-fuzz]. *)
let gen_scenario =
  QCheck.Gen.(
    int >|= fun seed ->
    Emts_check.Gen.scenario (Emts_prng.create ~seed ()))

let arbitrary_scenario =
  QCheck.make ~print:Emts_check.Scenario.describe gen_scenario

(* Substring check for error-message assertions. *)
let contains_substring hay needle =
  let h = String.length hay and n = String.length needle in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* Times for every task under an allocation, via a model and platform. *)
let times_for ~model ~platform g alloc =
  Emts_sched.Allocation.times alloc ~model ~platform ~graph:g

(* Worker domains for EA/EMTS tests: 1 by default, overridden by the CI
   multi-domain job (EMTS_TEST_DOMAINS=4) so the parallel evaluation
   paths are exercised by the whole suite on every PR. *)
let test_domains =
  match Sys.getenv_opt "EMTS_TEST_DOMAINS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 -> d
    | Some _ | None -> 1)
