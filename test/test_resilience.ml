(* Tests for the crash-safety substrate: durable writes, CRC-32, the
   JSON codec, checksummed JSONL logs, checksummed single-record files
   and the cooperative shutdown flag. *)

module R = Emts_resilience
module Json = R.Json

let in_tmpdir f =
  let dir = Filename.temp_file "emts_resilience" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name -> Sys.remove (Filename.concat dir name))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* --- Error --- *)

let test_error_to_string () =
  Alcotest.(check string)
    "with line" "g.ptg: line 7: bad task"
    (R.Error.to_string (R.Error.make ~line:7 ~file:"g.ptg" "bad task"));
  Alcotest.(check string)
    "without line" "g.ptg: missing header"
    (R.Error.to_string (R.Error.make ~file:"g.ptg" "missing header"))

(* --- write_file --- *)

let test_write_file_basic () =
  in_tmpdir @@ fun dir ->
  let path = Filename.concat dir "out.txt" in
  R.write_string ~path "hello\n";
  Alcotest.(check string) "content" "hello\n" (read_file path);
  R.write_string ~path "replaced\n";
  Alcotest.(check string) "overwrite" "replaced\n" (read_file path)

let test_write_file_failure_keeps_old () =
  in_tmpdir @@ fun dir ->
  let path = Filename.concat dir "out.txt" in
  R.write_string ~path "precious\n";
  (match
     R.write_file ~path (fun oc ->
         output_string oc "partial";
         failwith "producer crashed")
   with
  | () -> Alcotest.fail "expected the producer exception to propagate"
  | exception Failure _ -> ());
  Alcotest.(check string) "old content intact" "precious\n" (read_file path);
  Alcotest.(check bool) "no temporary left behind" false
    (Array.exists
       (fun n -> Filename.check_suffix n ".tmp")
       (Sys.readdir dir))

(* --- Crc32 --- *)

let test_crc32_known_value () =
  (* The standard CRC-32 check value: crc32("123456789") = 0xCBF43926. *)
  Alcotest.(check int32) "check value" 0xCBF43926l (R.Crc32.string "123456789");
  Alcotest.(check string) "hex rendering" "cbf43926"
    (R.Crc32.to_hex (R.Crc32.string "123456789"));
  Alcotest.(check int32) "empty string" 0l (R.Crc32.string "")

(* --- Json --- *)

let json_round_trip v =
  match Json.of_string (Json.to_string v) with
  | Ok v' -> v' = v
  | Error _ -> false

let test_json_round_trip () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Num 0.;
      Json.Num (-1.5);
      Json.Num 0.1;
      Json.Num 1e300;
      Json.Num 4.9e-324;
      Json.Str "";
      Json.Str "with \"quotes\" and \\ and \t tab";
      Json.Str "journal/fig4/chti/17";
      Json.List [ Json.Num 1.; Json.Str "two"; Json.Null ];
      Json.Obj
        [
          ("key", Json.Str "a/b/0");
          ("makespan", Json.Num 123.456789012345678);
          ("heuristics", Json.Obj [ ("mcpa", Json.Num 1.5) ]);
        ];
    ]
  in
  List.iteri
    (fun i v ->
      Alcotest.(check bool)
        (Printf.sprintf "case %d round-trips" i)
        true (json_round_trip v))
    cases

let test_json_nonfinite () =
  Alcotest.(check bool) "inf encodes as string" true
    (Json.float infinity = Json.Str "inf");
  let check_back label v expect =
    match Json.to_float (Json.float v) with
    | Ok x ->
      if Float.is_nan expect then
        Alcotest.(check bool) label true (Float.is_nan x)
      else Alcotest.(check (float 0.)) label expect x
    | Error e -> Alcotest.fail (label ^ ": " ^ e)
  in
  check_back "inf" infinity infinity;
  check_back "-inf" neg_infinity neg_infinity;
  check_back "nan" Float.nan Float.nan;
  check_back "finite" 1.25 1.25;
  (* A raw [Num] that slipped past {!Json.float} must still emit valid
     JSON: NaN degrades to [null], infinities to the string encoding. *)
  Alcotest.(check string)
    "raw Num nan emits null" "null"
    (Json.to_string (Json.Num Float.nan));
  Alcotest.(check string)
    "raw Num inf emits string" "\"inf\""
    (Json.to_string (Json.Num infinity));
  Alcotest.(check string)
    "raw Num -inf emits string" "\"-inf\""
    (Json.to_string (Json.Num neg_infinity));
  let doc =
    Json.to_string
      (Json.Obj [ ("a", Json.Num Float.nan); ("b", Json.Num infinity) ])
  in
  match Json.of_string doc with
  | Error e -> Alcotest.fail ("raw non-finite doc does not parse: " ^ e)
  | Ok v ->
    Alcotest.(check bool) "nan field is null" true
      (Json.member "a" v = Some Json.Null);
    Alcotest.(check bool) "inf field round-trips" true
      (match Json.member "b" v with
      | Some j -> Json.to_float j = Ok infinity
      | None -> false)

let test_json_no_newline () =
  let v =
    Json.Obj [ ("a", Json.Str "multi\nline"); ("b", Json.List [ Json.Num 1. ]) ]
  in
  let s = Json.to_string v in
  Alcotest.(check bool) "single line" false (String.contains s '\n');
  Alcotest.(check bool) "round-trips" true (json_round_trip v)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S parsed" s)
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

(* Strings in this codec are byte strings: every byte value 0..255 must
   survive encode → parse unchanged, whether it needs an escape ('"',
   '\\', control characters) or passes through raw (non-ASCII bytes,
   DEL).  The serve protocol ships PTG text through [Str], so any gap
   here is a wire-corruption bug. *)
let test_json_string_escaping_edges () =
  for code = 0 to 255 do
    let s = String.make 1 (Char.chr code) in
    Alcotest.(check bool)
      (Printf.sprintf "byte 0x%02x round-trips" code)
      true
      (json_round_trip (Json.Str s))
  done;
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%S round-trips" s)
        true
        (json_round_trip (Json.Str s)))
    [
      "\"";
      "\\";
      "\\\"";
      "a\"b\\c\"d";
      "\x00\x01\x02\x1f\x7f";
      "tab\there\nnewline\rreturn";
      "h\xc3\xa9llo";  (* UTF-8 bytes pass through verbatim *)
      String.init 256 Char.chr;
      "trailing backslash \\";
    ];
  (* Escapes the encoder never emits must still parse. *)
  let parses_to expect text =
    match Json.of_string text with
    | Ok (Json.Str s) -> Alcotest.(check string) text expect s
    | Ok _ -> Alcotest.fail (text ^ ": parsed to a non-string")
    | Error e -> Alcotest.fail (text ^ ": " ^ e)
  in
  parses_to "A" {|"A"|};
  parses_to "\xff" "\"\\u00ff\"";
  parses_to "/" {|"\/"|};
  parses_to "\b\012" {|"\b\f"|};
  (* ... and broken escapes must be rejected, not mangled. *)
  List.iter
    (fun text ->
      match Json.of_string text with
      | Ok _ -> Alcotest.fail (text ^ " parsed")
      | Error _ -> ())
    [ "\"\\u0100\""; {|"\uzzzz"|}; {|"\u00f"|}; {|"\x41"|}; {|"\"|} ]

(* --- Json properties --- *)

let json_gen =
  let open QCheck.Gen in
  let byte_string = string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 12) in
  (* Finite floats only: non-finite values encode as strings by design
     (covered by [test_json_nonfinite]), and [Num nan <> Num nan]. *)
  let finite_float =
    map2 (fun m e -> Float.ldexp m e) (float_bound_inclusive 1.) (int_range (-60) 60)
  in
  let leaf =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun f -> Json.Num f) finite_float;
        map (fun i -> Json.Num (float_of_int i)) small_signed_int;
        map (fun s -> Json.Str s) byte_string;
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (3, leaf);
            (1, map (fun l -> Json.List l) (list_size (int_bound 4) (self (depth - 1))));
            ( 1,
              map
                (fun kvs -> Json.Obj kvs)
                (list_size (int_bound 4) (pair byte_string (self (depth - 1)))) );
          ])
    3

let json_arb =
  QCheck.make ~print:(fun v -> Json.to_string v) json_gen

let prop_json_round_trip =
  QCheck.Test.make ~name:"to_string |> of_string is the identity" ~count:500
    json_arb json_round_trip

let prop_json_single_line =
  QCheck.Test.make ~name:"to_string never emits a newline" ~count:500 json_arb
    (fun v -> not (String.contains (Json.to_string v) '\n'))

(* --- Jsonl --- *)

let test_jsonl_append_load () =
  in_tmpdir @@ fun dir ->
  let path = Filename.concat dir "log.jsonl" in
  let w = R.Jsonl.open_append path in
  R.Jsonl.append w "{\"a\":1}";
  R.Jsonl.append w "{\"b\":2}";
  R.Jsonl.close w;
  R.Jsonl.close w;
  (* idempotent *)
  let w = R.Jsonl.open_append path in
  R.Jsonl.append w "{\"c\":3}";
  R.Jsonl.close w;
  match R.Jsonl.load path with
  | Error e -> Alcotest.fail (R.Error.to_string e)
  | Ok { records; dropped } ->
    Alcotest.(check (list string))
      "records in order"
      [ "{\"a\":1}"; "{\"b\":2}"; "{\"c\":3}" ]
      records;
    Alcotest.(check int) "clean file" 0 dropped

let test_jsonl_torn_tail () =
  in_tmpdir @@ fun dir ->
  let path = Filename.concat dir "log.jsonl" in
  let w = R.Jsonl.open_append path in
  R.Jsonl.append w "one";
  R.Jsonl.append w "two";
  R.Jsonl.close w;
  (* Simulate a crash mid-append: a partial line with no newline. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "deadbeef {\"tr";
  close_out oc;
  (match R.Jsonl.load path with
  | Error e -> Alcotest.fail (R.Error.to_string e)
  | Ok { records; dropped } ->
    Alcotest.(check (list string)) "prefix kept" [ "one"; "two" ] records;
    Alcotest.(check int) "torn line dropped" 1 dropped);
  (* A corrupt checksum mid-file truncates there, dropping the rest. *)
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> l <> "")
  in
  let oc = open_out path in
  List.iteri
    (fun i l ->
      let l = if i = 0 then "00000000" ^ String.sub l 8 (String.length l - 8)
        else l
      in
      output_string oc (l ^ "\n"))
    lines;
  close_out oc;
  match R.Jsonl.load path with
  | Error e -> Alcotest.fail (R.Error.to_string e)
  | Ok { records; dropped } ->
    Alcotest.(check (list string)) "nothing before corruption" [] records;
    Alcotest.(check bool) "everything after dropped" true (dropped >= 2)

let test_jsonl_rewrite () =
  in_tmpdir @@ fun dir ->
  let path = Filename.concat dir "log.jsonl" in
  let w = R.Jsonl.open_append path in
  R.Jsonl.append w "stale";
  R.Jsonl.close w;
  R.Jsonl.rewrite path [ "fresh-1"; "fresh-2" ];
  match R.Jsonl.load path with
  | Error e -> Alcotest.fail (R.Error.to_string e)
  | Ok { records; dropped } ->
    Alcotest.(check (list string)) "replaced" [ "fresh-1"; "fresh-2" ] records;
    Alcotest.(check int) "clean" 0 dropped

let test_jsonl_rejects_newline () =
  in_tmpdir @@ fun dir ->
  let path = Filename.concat dir "log.jsonl" in
  let w = R.Jsonl.open_append path in
  Fun.protect
    ~finally:(fun () -> R.Jsonl.close w)
    (fun () ->
      match R.Jsonl.append w "a\nb" with
      | () -> Alcotest.fail "newline payload accepted"
      | exception Invalid_argument _ -> ())

(* --- Checksummed --- *)

let test_checksummed_round_trip () =
  in_tmpdir @@ fun dir ->
  let path = Filename.concat dir "ckpt" in
  let payload = "{\"magic\":\"emts-ea-checkpoint\",\"generation\":17}" in
  R.Checksummed.save ~path payload;
  (match R.Checksummed.load ~path with
  | Ok p -> Alcotest.(check string) "round-trip" payload p
  | Error e -> Alcotest.fail (R.Error.to_string e));
  (* Flip one byte of the payload: the checksum must catch it. *)
  let raw = read_file path in
  let flipped = Bytes.of_string raw in
  let i = String.length raw - 2 in
  Bytes.set flipped i (if Bytes.get flipped i = 'x' then 'y' else 'x');
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc flipped);
  (match R.Checksummed.load ~path with
  | Ok _ -> Alcotest.fail "corruption not detected"
  | Error e ->
    Alcotest.(check string) "error names the file" path e.file);
  match R.Checksummed.load ~path:(Filename.concat dir "absent") with
  | Ok _ -> Alcotest.fail "missing file loaded"
  | Error _ -> ()

(* --- Shutdown --- *)

let test_shutdown_flag () =
  R.Shutdown.reset ();
  Alcotest.(check bool) "initially clear" false (R.Shutdown.requested ());
  R.Shutdown.check ();
  (* no raise *)
  R.Shutdown.request ();
  Alcotest.(check bool) "set after request" true (R.Shutdown.requested ());
  (match R.Shutdown.check () with
  | () -> Alcotest.fail "check did not raise"
  | exception R.Interrupted -> ());
  R.Shutdown.reset ();
  Alcotest.(check bool) "clear after reset" false (R.Shutdown.requested ());
  Alcotest.(check int) "exit code" 130 R.Shutdown.exit_interrupted

let () =
  Alcotest.run "resilience"
    [
      ("error", [ Alcotest.test_case "to_string" `Quick test_error_to_string ]);
      ( "write_file",
        [
          Alcotest.test_case "basic" `Quick test_write_file_basic;
          Alcotest.test_case "failure keeps old content" `Quick
            test_write_file_failure_keeps_old;
        ] );
      ("crc32", [ Alcotest.test_case "known value" `Quick test_crc32_known_value ]);
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite;
          Alcotest.test_case "single line" `Quick test_json_no_newline;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "string escaping edges" `Quick
            test_json_string_escaping_edges;
          QCheck_alcotest.to_alcotest prop_json_round_trip;
          QCheck_alcotest.to_alcotest prop_json_single_line;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "append/load" `Quick test_jsonl_append_load;
          Alcotest.test_case "torn tail" `Quick test_jsonl_torn_tail;
          Alcotest.test_case "rewrite" `Quick test_jsonl_rewrite;
          Alcotest.test_case "rejects newline" `Quick test_jsonl_rejects_newline;
        ] );
      ( "checksummed",
        [
          Alcotest.test_case "round trip + corruption" `Quick
            test_checksummed_round_trip;
        ] );
      ("shutdown", [ Alcotest.test_case "flag" `Quick test_shutdown_flag ]);
    ]
