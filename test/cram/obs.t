Observability flags on emts-sched: a seeded run with --trace and
--metrics produces a Chrome trace-event JSONL file and a metrics
summary whose evaluation count matches the EA exactly (EMTS5 on a
seeded run: 4 heuristic seeds + 5 generations x 25 offspring = 129).

  $ emts-gen fft --points 16 --costs --seed 42 -o fft.ptg
  wrote fft.ptg (95 tasks, 158 edges)
  $ emts-sched fft.ptg --platform chti --model model2 --algorithm emts5 \
  >   --seed 42 --domains 2 --trace out.jsonl --metrics \
  >   --metrics-json metrics.json > summary.txt 2> err.txt
  $ grep 'wrote out.jsonl' err.txt
  wrote out.jsonl

The summary reports exactly one count per instrument; evaluations are
the acceptance-criteria 129:

  $ grep 'metrics summary' summary.txt
  metrics summary
  $ grep -E 'ea\.(evaluations|generations) ' summary.txt | tr -s ' '
   ea.evaluations 129
   ea.generations 5
  $ grep -c 'sched.runs' summary.txt
  1

The trace is well-formed JSONL: every line is one JSON object carrying
ph, ts and name keys, with one span per EA generation and one lane per
worker domain:

  $ lines=$(wc -l < out.jsonl)
  $ test "$lines" -gt 0
  $ test "$(grep -c '^{.*}$' out.jsonl)" = "$lines"
  $ test "$(grep -c '"ph":' out.jsonl)" = "$lines"
  $ test "$(grep -c '"ts":' out.jsonl)" = "$lines"
  $ test "$(grep -c '"name":' out.jsonl)" = "$lines"
  $ grep -c '"name":"ea.generation"' out.jsonl
  5
  $ grep -o '"name":"worker [0-9]*"' out.jsonl | sort -u
  "name":"worker 1"
  "name":"worker 2"

The machine-readable snapshot has all three instrument sections:

  $ grep -c '^{"counters":{.*},"gauges":{.*},"histograms":{.*}}$' metrics.json
  1
  $ grep -o '"ea.evaluations":[0-9]*' metrics.json
  "ea.evaluations":129

Without the flags nothing extra is emitted:

  $ emts-sched fft.ptg --platform chti --model model2 --algorithm emts5 \
  >   --seed 42 > plain.txt 2> plain_err.txt
  $ grep -c 'metrics summary' plain.txt
  0
  [1]
  $ test ! -s plain_err.txt

And the observer layer never changes results: makespans agree between
the plain and the fully instrumented run.

  $ grep 'EMTS5 makespan' summary.txt > a
  $ grep 'EMTS5 makespan' plain.txt > b
  $ cmp a b
