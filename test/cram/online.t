The online scheduling mode: DAGs arrive over virtual time through
named submit/advance sessions; the daemon re-plans the unstarted
remainder on each arrival while committed tasks never move.  Drive a
live daemon through a two-DAG arrival, once with the Perotin-Sun
baseline and once with EMTS re-planning.

  $ SOCK=/tmp/emts-online-cram-$$.sock
  $ emts-serve --socket $SOCK --workers 1 2>serve.log &
  $ SERVE_PID=$!
  $ for i in $(seq 1 100); do [ -S $SOCK ] && break; sleep 0.1; done

One line per session with the realised makespan against the
clairvoyant lower bound.  The run itself enforces the competitive
sanity bound: a non-finite ratio, or one below 1, is a client error,
so a clean exit certifies both sessions.

  $ emts-loadgen --socket $SOCK --online --dags 2 --seed 11 --json online.json > online.out
  $ grep -c '^online baseline makespan=' online.out
  1
  $ grep -c '^online emts5 makespan=' online.out
  1
  $ grep -c 'ratio=' online.out
  2

The JSON summary carries the same two sessions for the campaign
tooling:

  $ grep -c '"mode":"online"' online.json
  1
  $ grep -o '"algorithm"' online.json | wc -l
  2

Online commitments are deterministic: a fresh daemon, the same seed
and arrival trace, the same bytes.

  $ SOCK2=/tmp/emts-online-cram2-$$.sock
  $ emts-serve --socket $SOCK2 --workers 1 2>serve2.log &
  $ SERVE2_PID=$!
  $ for i in $(seq 1 100); do [ -S $SOCK2 ] && break; sleep 0.1; done
  $ emts-loadgen --socket $SOCK2 --online --dags 2 --seed 11 > again.out
  $ cmp online.out again.out
  $ kill -TERM $SERVE2_PID
  $ wait $SERVE2_PID

SIGTERM still drains gracefully with online sessions admitted:

  $ kill -TERM $SERVE_PID
  $ wait $SERVE_PID
  $ test -S $SOCK
  [1]
