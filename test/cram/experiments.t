The mutation-density figure is fully deterministic:

  $ emts-experiments fig3 --samples 10000 --seed 1 | head -5
  Figure 3 — density of the mutation adjustment C (sigma1 = sigma2 = 5, a = 0.2; 10000 samples)
  
    -20.00 |                                                              0
    -19.00 |                                                              0
    -18.00 |                                                              0
  $ emts-experiments fig3 --samples 10000 --seed 1 | tail -2
  shrink probability (C < 0): 0.2036 (paper: 0.2)
  P[C = 0]: 0.0000 (operator never yields 0)
