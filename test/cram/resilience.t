A journaled campaign records each completed (instance x platform) cell
durably; everything is seeded, so this output is reproducible.

  $ emts-experiments fig4 --classes strassen --scale 0.02 --seed 7 --quiet \
  >   --journal j.jsonl --csv first.csv > fig4-first.txt
  wrote first.csv
  journal j.jsonl: 0 cell(s) reused, 4 recorded

Re-running with --resume serves every cell from the journal without
recomputing anything, and reproduces the figure and the deterministic
CSV columns exactly (column 8, emts_runtime_mean, is wall-clock):

  $ emts-experiments fig4 --classes strassen --scale 0.02 --seed 7 --quiet \
  >   --journal j.jsonl --resume --csv second.csv > fig4-second.txt
  wrote second.csv
  journal j.jsonl: 4 cell(s) reused, 0 recorded
  $ diff fig4-first.txt fig4-second.txt
  $ cut -d, -f1-7 first.csv > first.det
  $ cut -d, -f1-7 second.csv > second.det
  $ diff first.det second.det

A torn trailing line — the signature of a crash mid-append — is dropped
on load and only the lost cell is recomputed:

  $ head -c -60 j.jsonl > torn.jsonl
  $ emts-experiments fig4 --classes strassen --scale 0.02 --seed 7 --quiet \
  >   --journal torn.jsonl --resume --csv third.csv > fig4-third.txt
  journal torn.jsonl: dropped 1 torn trailing line(s) from a previous crash
  wrote third.csv
  journal torn.jsonl: 3 cell(s) reused, 1 recorded
  $ cut -d, -f1-7 third.csv > third.det
  $ diff first.det third.det

Resuming under a different seed derives different per-cell PRNG
sub-streams; the recorded fingerprints catch it instead of silently
mixing incompatible results:

  $ emts-experiments fig4 --classes strassen --scale 0.02 --seed 8 --quiet \
  >   --journal j.jsonl --resume > /dev/null
  journal j.jsonl: 0 cell(s) reused, 0 recorded
  emts-experiments: journal: cell fig4/Strassen/chti/0 was recorded under a different campaign (stream fingerprint 10819648e9f61e30, this run derives 5ddb99768b8a793d) — resume with the same --seed, --scale and --classes
  [124]
  $ emts-experiments fig4 --resume
  emts-experiments: --resume requires --journal FILE
  [124]

The EMTS optimiser itself checkpoints and resumes bit-identically: a
checkpointed run and a resume from its final snapshot print exactly the
same schedule as a plain run.

  $ emts-gen fft --points 4 -o fft.ptg
  wrote fft.ptg (15 tasks, 22 edges)
  $ emts-sched fft.ptg --platform chti --model model2 --algorithm emts5 \
  >   --seed 11 > plain.out
  $ emts-sched fft.ptg --platform chti --model model2 --algorithm emts5 \
  >   --seed 11 --checkpoint ck.json > checkpointed.out
  $ cmp plain.out checkpointed.out
  $ emts-sched fft.ptg --platform chti --model model2 --algorithm emts5 \
  >   --seed 11 --checkpoint ck.json --resume > resumed.out
  $ cmp plain.out resumed.out

The flags validate cleanly:

  $ emts-sched fft.ptg --algorithm emts5 --resume
  emts-sched: --resume requires --checkpoint FILE
  [124]
  $ emts-sched fft.ptg --algorithm mcpa --checkpoint ck2.json
  emts-sched: --checkpoint/--resume apply to EMTS algorithms only
  [124]
  $ emts-sched fft.ptg --algorithm emts5 --checkpoint ck.json --checkpoint-every 0
  emts-sched: checkpoint-every must be >= 1
  [124]
