Generate a small FFT graph, inspect it, and schedule it with each
algorithm; everything is seeded, so this output is reproducible.

  $ emts-gen fft --points 4 -o fft.ptg
  wrote fft.ptg (15 tasks, 22 edges)
  $ head -3 fft.ptg
  ptg v1
  task 0 1 0 0 direct split_0_0
  task 1 1 0 0 direct split_1_0
  $ emts-sched fft.ptg --platform chti --model model1 --algorithm seq
  SEQ makespan   1.16279e-09 s
  utilization     15.0 %
  total allocation 15 procs over 15 tasks (platform: chti)
  $ emts-sched fft.ptg --platform chti --model model2 --algorithm mcpa
  MCPA makespan   2.05814e-10 s
  utilization     89.8 %
  total allocation 92 procs over 15 tasks (platform: chti)

Random layered graphs honour the requested size:

  $ emts-gen random -n 30 --width 0.5 --jump 0 --costs --seed 7 -o r.ptg
  wrote r.ptg (30 tasks, 81 edges)
  $ grep -c '^task' r.ptg
  30

The performance flags are outcome-preserving — the cached, multi-domain
run prints exactly the same schedule:

  $ emts-sched fft.ptg --platform chti --model model2 --algorithm emts5 \
  >   --seed 11 > plain.out
  $ emts-sched fft.ptg --platform chti --model model2 --algorithm emts5 \
  >   --seed 11 --domains 2 --fitness-cache 1024 > tuned.out
  $ cmp plain.out tuned.out
  $ emts-sched fft.ptg --algorithm emts5 --fitness-cache=-3
  emts-sched: fitness-cache must be >= 0
  [124]

Bad inputs fail cleanly:

  $ emts-gen fft --points 5 -o bad.ptg
  emts-gen: Fft.generate: points must be a power of two >= 2
  [124]
  $ emts-sched missing.ptg
  emts-sched: GRAPH.ptg argument: no 'missing.ptg' file or directory
  Usage: emts-sched [OPTION]… GRAPH.ptg
  Try 'emts-sched --help' for more information.
  [124]
  $ emts-sched fft.ptg --algorithm warp-drive
  emts-sched: unknown algorithm "warp-drive"
  [124]

Elementary shapes:

  $ emts-gen shape chain --size 3 -o c.ptg
  wrote c.ptg (3 tasks, 2 edges)
  $ grep -c '^edge' c.ptg
  2
  $ emts-gen shape pretzel
  emts-gen: unknown shape "pretzel"
  [124]
