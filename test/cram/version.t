Every emts binary answers --version with the same "emts-<name>
<version>" convention (one shared version constant in Obs_cli):

  $ emts-gen --version
  emts-gen 1.0.0
  $ emts-sched --version
  emts-sched 1.0.0
  $ emts-experiments --version
  emts-experiments 1.0.0
  $ emts-serve --version
  emts-serve 1.0.0
  $ emts-loadgen --version
  emts-loadgen 1.0.0
  $ emts-fuzz --version
  emts-fuzz 1.0.0
