The load generator's own error surface: every operator mistake must be
a one-line typed error, never a stack trace or a hang.

No server address:

  $ emts-loadgen --ping
  emts-loadgen: no server address (need --socket or --connect)
  [124]

A socket nobody is listening on:

  $ emts-loadgen --socket /tmp/emts-loadgen-cram-dead-$$.sock --ping
  emts-loadgen: connect(): No such file or directory
  [124]

A malformed TCP address:

  $ emts-loadgen --connect nonsense --ping
  emts-loadgen: --connect "nonsense": expected HOST:PORT
  [124]

A non-positive load rate is rejected before any connection is made:

  $ emts-loadgen --socket /tmp/emts-loadgen-cram-dead-$$.sock --rate 0 --requests 1
  emts-loadgen: --rate must be positive
  [124]

A missing PTG corpus file:

  $ emts-loadgen --socket /tmp/emts-loadgen-cram-dead-$$.sock --once --ptg /does/not/exist.ptg
  emts-loadgen: /does/not/exist.ptg: No such file or directory
  [124]

Against a live daemon, the client-side algorithm selector reaches the
heuristic (non-evolutionary) path, and is deterministic per seed:

  $ SOCK=/tmp/emts-loadgen-cram-$$.sock
  $ emts-serve --socket $SOCK --workers 1 2>serve.log &
  $ SERVE_PID=$!
  $ for i in $(seq 1 100); do [ -S $SOCK ] && break; sleep 0.1; done

  $ emts-loadgen --socket $SOCK --once --algorithm mcpa --seed 3 > mcpa1.out
  $ grep -c 'algorithm=MCPA' mcpa1.out
  1
  $ grep -c 'generations=0 evaluations=0' mcpa1.out
  1
  $ emts-loadgen --socket $SOCK --once --algorithm mcpa --seed 3 > mcpa2.out
  $ cmp mcpa1.out mcpa2.out

An open-loop load run reports a tally and writes the JSON summary the
campaign tooling consumes (timings vary, shape does not):

  $ emts-loadgen --socket $SOCK --rate 50 --requests 5 --tasks 8 --json load.json > load.out
  $ grep -c 'requests=5 ok=5 rejected=0 errors=0' load.out
  1
  $ grep -c 'throughput=' load.out
  1
  $ grep -c '"p99"' load.json
  1
  $ grep -c '"ok":5' load.json
  1

Shut the daemon down:

  $ kill $SERVE_PID
  $ wait $SERVE_PID 2>/dev/null || true
