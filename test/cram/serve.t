The scheduling daemon: start it on a private Unix socket and drive it
with the load generator.  (The socket lives in /tmp because Unix
socket paths are limited to ~100 bytes and the sandbox path is long.)

  $ SOCK=/tmp/emts-serve-cram-$$.sock
  $ emts-serve --socket $SOCK --workers 2 2>serve.log &
  $ SERVE_PID=$!
  $ for i in $(seq 1 100); do [ -S $SOCK ] && break; sleep 0.1; done

A health check reports the server identity:

  $ emts-loadgen --socket $SOCK --ping
  pong from emts-serve 1.0.0

A schedule request returns a complete answer; repeating it with the
same seed returns byte-identical output (responses are a function of
the request alone):

  $ emts-loadgen --socket $SOCK --once --seed 7 > first.out
  $ grep -c 'algorithm=EMTS5' first.out
  1
  $ emts-loadgen --socket $SOCK --once --seed 7 > second.out
  $ cmp first.out second.out

A malformed frame poisons only its own connection — the client is told
and the daemon keeps serving everyone else:

  $ emts-loadgen --socket $SOCK --malformed
  rejected with code=malformed_frame

A client that sends a request and hangs up before reading the reply
costs the server nothing but a failed write:

  $ emts-loadgen --socket $SOCK --hangup
  hung up after sending request

After both faults the daemon still answers, with the same bytes:

  $ emts-loadgen --socket $SOCK --once --seed 7 > third.out
  $ cmp first.out third.out

A deadline-tagged request still returns a valid best-so-far schedule:

  $ emts-loadgen --socket $SOCK --once --seed 7 --algorithm emts10 \
  >   --deadline 0.000001 | grep -c 'deadline_hit=true'
  1

The stats verb exposes the serving metrics, latency percentiles
included:

  $ emts-loadgen --socket $SOCK --stats | grep -c 'serve.requests_total'
  1
  $ emts-loadgen --socket $SOCK --stats | grep -c '"p99"'
  1

SIGTERM drains gracefully: the daemon finishes admitted work, dumps
its metrics, removes the socket and exits 0:

  $ kill -TERM $SERVE_PID
  $ wait $SERVE_PID
  $ grep -c 'serve.requests_total' serve.log
  1
  $ test -S $SOCK
  [1]

Responses do not depend on the worker-domain count: a fresh daemon
with a different topology returns the same bytes for the same seed:

  $ emts-serve --socket $SOCK --workers 4 --pool-domains 2 2>> serve.log &
  $ SERVE_PID=$!
  $ for i in $(seq 1 100); do [ -S $SOCK ] && break; sleep 0.1; done
  $ emts-loadgen --socket $SOCK --once --seed 7 > fourth.out
  $ cmp first.out fourth.out
  $ kill -TERM $SERVE_PID
  $ wait $SERVE_PID

Telemetry.  A traced daemon and a traced client stamp the same
trace_id on both sides of the wire, the metrics verb serves an
OpenMetrics text exposition, SIGQUIT dumps the flight recorder without
stopping the daemon, and the SIGTERM drain flushes the trace so spans
are never left in a stdio buffer:

  $ emts-serve --socket $SOCK --trace server-trace.jsonl \
  >   --flight-recorder flight.jsonl 2>> serve.log &
  $ SERVE_PID=$!
  $ for i in $(seq 1 100); do [ -S $SOCK ] && break; sleep 0.1; done

  $ emts-loadgen --socket $SOCK --once --seed 7 --trace client-trace.jsonl \
  >   > traced.out 2> client.log
  $ grep -c 'algorithm=EMTS5' traced.out
  1
  $ grep -c 'wrote client-trace.jsonl' client.log
  1
  $ grep -c '"name":"client.request"' client-trace.jsonl
  1

  $ emts-loadgen --socket $SOCK --metrics > metrics.out
  $ grep -c '^# EOF' metrics.out
  1
  $ grep -c '^emts_serve_requests_total' metrics.out
  1
  $ grep -c '^# TYPE emts_serve_queue_wait_s histogram' metrics.out
  1

  $ kill -QUIT $SERVE_PID
  $ for i in $(seq 1 100); do [ -s flight.jsonl ] && break; sleep 0.1; done
  $ grep -c '"flight":"emts"' flight.jsonl
  1
  $ grep -c '"metrics":' flight.jsonl
  1
  $ emts-loadgen --socket $SOCK --ping
  pong from emts-serve 1.0.0

  $ kill -TERM $SERVE_PID
  $ wait $SERVE_PID
  $ test $(grep -c '"name":"serve.solve"' server-trace.jsonl) -ge 1
  $ tail -n 1 server-trace.jsonl | grep -c '}$'
  1

Concatenating the two JSONL files yields one merged Perfetto trace in
which client and server spans of the same request share a trace_id:

  $ TID=$(grep -o '"trace_id":"[^"]*"' client-trace.jsonl | head -n 1)
  $ cat server-trace.jsonl client-trace.jsonl > merged.jsonl
  $ test $(grep -c -- "$TID" merged.jsonl) -ge 2

Fault injection.  A seeded plan armed at startup crashes the first
worker evaluation: the daemon answers it with a typed internal error,
respawns the lane, and the very next identical request returns the
same bytes as a fault-free daemon.  The health verb answers throughout
and the counters record exactly one crash and one respawn:

  $ cat > plan.json << 'EOF'
  > {"seed":42,"events":[{"site":"worker_eval","nth":0,"action":"raise"}]}
  > EOF
  $ emts-serve --socket $SOCK --workers 1 --fault-plan plan.json 2> fault.log &
  $ SERVE_PID=$!
  $ for i in $(seq 1 100); do [ -S $SOCK ] && break; sleep 0.1; done
  $ grep -c 'fault plan armed: 1 events (seed 42)' fault.log
  1
  $ emts-loadgen --socket $SOCK --health
  live=true ready=true draining=false
  $ emts-loadgen --socket $SOCK --once --seed 7 2>&1 | grep -c 'server error \[internal\]'
  1
  $ emts-loadgen --socket $SOCK --once --seed 7 > healed.out
  $ cmp first.out healed.out
  $ emts-loadgen --socket $SOCK --metrics | grep '^emts_serve_internal_errors_total'
  emts_serve_internal_errors_total 1
  $ emts-loadgen --socket $SOCK --metrics | grep '^emts_serve_worker_respawns_total'
  emts_serve_worker_respawns_total 1
  $ kill -TERM $SERVE_PID
  $ wait $SERVE_PID

A second SIGTERM during a drain is an emergency exit (130 + 1): the
daemon is held in a drain by an injected slow solve, the first signal
starts the drain, the second one ends the process immediately:

  $ cat > slow.json << 'EOF'
  > {"seed":7,"events":[{"site":"solve","nth":0,"action":"delay","seconds":5.0}]}
  > EOF
  $ emts-serve --socket $SOCK --workers 1 --fault-plan slow.json 2> slow.log &
  $ SERVE_PID=$!
  $ for i in $(seq 1 100); do [ -S $SOCK ] && break; sleep 0.1; done
  $ emts-loadgen --socket $SOCK --once --seed 7 > slow.out 2> slow-client.log &
  $ LG_PID=$!
  $ sleep 0.5
  $ kill -TERM $SERVE_PID
  $ sleep 0.5
  $ kill -TERM $SERVE_PID
  $ wait $SERVE_PID
  [131]
  $ wait $LG_PID || true
  $ rm -f $SOCK

A plan that does not parse refuses the whole daemon, before any
listener is bound:

  $ echo 'not json' > bad.json
  $ emts-serve --socket $SOCK --fault-plan bad.json
  emts-serve: --fault-plan bad.json: invalid JSON: expected "null" at offset 0
  [124]

The daemon refuses to start without a listener, and rejects a bad TCP
spec:

  $ emts-serve
  emts-serve: no listeners configured (set a socket path or a TCP address)
  [124]
  $ emts-serve --listen nonsense
  emts-serve: --listen "nonsense": expected HOST:PORT
  [124]
