The fuzzing harness: oracle registry, a clean bounded run, and the
error surface for unknown oracle names.

  $ emts-fuzz --list-oracles
  validate     every algorithm's schedule (heuristic seeds, random allocations, EA best) passes Schedule.validate
  differential the zero-noise simulator, the fitness fast paths and the delta evaluator (over a mutation chain) reproduce every list schedule exactly
  determinism  one seed, one result: domains, fitness cache, early reject, delta fitness off, checkpoint/resume and the serve engine all agree bit for bit
  wire         random/bit-flipped/truncated/oversized frames and malformed trace_id fields against a live daemon yield only typed errors (the metrics verb a complete exposition), and the daemon stays alive
  resilience   corrupt or truncated journals, checkpoints and .ptg files are cleanly rejected or torn-tail-truncated, never misread
  chaos        a live daemon under a seeded fault plan (worker crashes, stalls, hangups, I/O errors) never dies, answers every accepted request exactly once with a typed reply, respawns crashed lanes, keeps shed requests retryable, and computes bit-identical results once the storm passes
  fleet        a router over live backends (one hangup-only) survives malformed input and a mid-storm backend kill, keeps every request answered from the survivors, matches a fresh engine bit for bit post-storm, and refuses typed-unavailable once every backend is gone
  online       online scheduling over a 3-DAG arrival trace: commitments never move, the merged realised schedule validates at or above the clairvoyant lower bound, zero-noise plans replay exactly, changeless re-plans are no-ops, and commitment logs are bit-identical across domains x islands x cache x delta and under seeded slowdown noise

A bounded offline run on a clean tree passes and leaves no corpus
directory behind (repro files are only written on failure):

  $ emts-fuzz --oracle validate,differential --max-scenarios 5 --time-budget 60 --seed 1 2>/dev/null | grep -v 'scenarios in'
  oracle validate     5 checks
  oracle differential 5 checks
  $ emts-fuzz --oracle validate --max-scenarios 2 --time-budget 60 --seed 1 2>/dev/null | grep -c '0 failures'
  1
  $ test ! -e fuzz-corpus

Unknown oracles are rejected with the list of known ones:

  $ emts-fuzz --oracle nope --time-budget 1
  emts-fuzz: unknown oracle "nope" (known: validate, differential, determinism, wire, resilience, chaos, fleet, online)
  [124]

Replaying a nonexistent repro file is a usage error:

  $ emts-fuzz --replay missing.json
  emts-fuzz: option '--replay': no 'missing.json' file or directory
  Usage: emts-fuzz [OPTION]…
  Try 'emts-fuzz --help' for more information.
  [124]
