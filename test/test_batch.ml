(* Tests for the batch-queue simulator (FCFS and EASY backfilling). *)

module B = Emts_batch

let check_float = Alcotest.(check (float 1e-9))

let j ?(submit = 0.) ?(walltime = 10.) ?(runtime = 10.) ~id ~procs () =
  B.job ~id ~submit ~procs ~walltime ~runtime

let placement r id =
  List.find (fun (p : B.placement) -> p.B.job.B.id = id) r.B.placements

let test_job_validation () =
  let reject label f =
    Alcotest.(check bool) label true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  reject "negative id" (fun () -> j ~id:(-1) ~procs:1 ());
  reject "zero procs" (fun () -> j ~id:0 ~procs:0 ());
  reject "zero walltime" (fun () -> j ~id:0 ~procs:1 ~walltime:0. ());
  reject "negative runtime" (fun () -> j ~id:0 ~procs:1 ~runtime:(-1.) ());
  reject "too many procs" (fun () ->
      B.fcfs ~procs:4 [ j ~id:0 ~procs:5 () ]);
  reject "duplicate ids" (fun () ->
      B.fcfs ~procs:4 [ j ~id:0 ~procs:1 (); j ~id:0 ~procs:1 () ])

let test_single_job () =
  let r = B.fcfs ~procs:10 [ j ~id:0 ~procs:4 ~runtime:7. ~walltime:8. () ] in
  let p = placement r 0 in
  check_float "starts immediately" 0. p.B.start;
  check_float "runs its runtime" 7. p.B.finish;
  Alcotest.(check bool) "not killed" false p.B.killed;
  check_float "makespan" 7. r.B.makespan;
  check_float "mean wait" 0. r.B.mean_wait

let test_parallel_fit () =
  let r = B.fcfs ~procs:10 [ j ~id:0 ~procs:6 (); j ~id:1 ~procs:4 () ] in
  check_float "both at 0 (fit together)" 0. (placement r 1).B.start;
  check_float "makespan one wave" 10. r.B.makespan

let test_fcfs_blocks () =
  (* head (8 procs) runs; next (4) can't fit, and the small job behind
     it must ALSO wait under FCFS even though 2 procs are free. *)
  let jobs =
    [
      j ~id:0 ~procs:8 ();
      j ~id:1 ~procs:4 ();
      j ~id:2 ~procs:2 ~walltime:5. ~runtime:5. ();
    ]
  in
  let r = B.fcfs ~procs:10 jobs in
  check_float "job1 waits for job0" 10. (placement r 1).B.start;
  check_float "job2 waits behind job1 (no backfilling)" 10.
    (placement r 2).B.start

let test_easy_backfills_short_job () =
  (* same scenario with EASY: the 2-proc/5-s job finishes before job1's
     reservation (t=10), so it backfills at t=0. *)
  let jobs =
    [
      j ~id:0 ~procs:8 ();
      j ~id:1 ~procs:4 ();
      j ~id:2 ~procs:2 ~walltime:5. ~runtime:5. ();
    ]
  in
  let r = B.easy_backfilling ~procs:10 jobs in
  check_float "job2 backfills at 0" 0. (placement r 2).B.start;
  check_float "head's reservation is kept" 10. (placement r 1).B.start;
  Alcotest.(check bool) "EASY waits less than FCFS" true
    (r.B.mean_wait < (B.fcfs ~procs:10 jobs).B.mean_wait)

let test_easy_extra_procs_rule () =
  (* the reservation needs only 4 of the 10 procs freed at t=10, so a
     2-proc job may backfill EVEN with a long walltime (extra rule). *)
  let jobs =
    [
      j ~id:0 ~procs:8 ();
      j ~id:1 ~procs:4 ();
      j ~id:2 ~procs:2 ~walltime:50. ~runtime:50. ();
    ]
  in
  let r = B.easy_backfilling ~procs:10 jobs in
  check_float "long narrow job backfills via extra procs" 0.
    (placement r 2).B.start;
  check_float "head still on time" 10. (placement r 1).B.start

let test_easy_never_delays_head () =
  (* head needs the whole machine: nothing may backfill unless it
     finishes (by walltime) before the reservation. *)
  let jobs =
    [
      j ~id:0 ~procs:8 ();
      j ~id:1 ~procs:10 ();
      j ~id:2 ~procs:2 ~walltime:50. ~runtime:50. ();
    ]
  in
  let r = B.easy_backfilling ~procs:10 jobs in
  check_float "head at its reservation" 10. (placement r 1).B.start;
  (* job2 could not backfill at t=0 and the head then holds the whole
     machine until t=20 *)
  check_float "no backfill" 20. (placement r 2).B.start

let test_early_completion_helps () =
  (* the running job finishes before its walltime: the queue head
     starts at the ACTUAL finish, not the projection. *)
  let jobs =
    [ j ~id:0 ~procs:10 ~walltime:20. ~runtime:4. (); j ~id:1 ~procs:10 () ]
  in
  let r = B.easy_backfilling ~procs:10 jobs in
  check_float "starts at actual finish" 4. (placement r 1).B.start

let test_kill_at_walltime () =
  let r =
    B.fcfs ~procs:4 [ j ~id:0 ~procs:4 ~walltime:5. ~runtime:99. () ]
  in
  let p = placement r 0 in
  check_float "killed at walltime" 5. p.B.finish;
  Alcotest.(check bool) "flagged" true p.B.killed

let test_arrivals_over_time () =
  let jobs =
    [
      j ~id:0 ~procs:10 ~submit:0. ();
      j ~id:1 ~procs:10 ~submit:3. ();
      j ~id:2 ~procs:10 ~submit:25. ();
    ]
  in
  let r = B.fcfs ~procs:10 jobs in
  check_float "job1 queued until job0 done" 10. (placement r 1).B.start;
  check_float "job2 starts on arrival (idle)" 25. (placement r 2).B.start;
  check_float "makespan" 35. r.B.makespan

let test_metrics () =
  let r = B.fcfs ~procs:10 [ j ~id:0 ~procs:10 (); j ~id:1 ~procs:10 () ] in
  (* both 10x10x10s back to back: utilization 100%, waits 0 and 10 *)
  check_float "utilization" 1.0 r.B.utilization;
  check_float "mean wait" 5. r.B.mean_wait;
  (* slowdowns: 1 and 2 *)
  check_float "mean bounded slowdown" 1.5 r.B.mean_bounded_slowdown

let test_zero_runtime_job () =
  let r =
    B.easy_backfilling ~procs:4
      [ j ~id:0 ~procs:4 ~walltime:1. ~runtime:0. (); j ~id:1 ~procs:4 () ]
  in
  check_float "zero-runtime finishes instantly" 0. (placement r 0).B.finish;
  check_float "next starts immediately" 0. (placement r 1).B.start

let test_simultaneous_arrivals_fifo () =
  (* same submit time: queue order is by id *)
  let jobs =
    [ j ~id:2 ~procs:4 (); j ~id:0 ~procs:4 (); j ~id:1 ~procs:4 () ]
  in
  let r = B.fcfs ~procs:4 jobs in
  check_float "id 0 first" 0. (placement r 0).B.start;
  check_float "id 1 second" 10. (placement r 1).B.start;
  check_float "id 2 third" 20. (placement r 2).B.start

let test_empty_workload () =
  let r = B.easy_backfilling ~procs:8 [] in
  Alcotest.(check int) "no placements" 0 (List.length r.B.placements);
  check_float "zero makespan" 0. r.B.makespan;
  check_float "zero wait" 0. r.B.mean_wait

(* property: no instant is oversubscribed, for either policy *)

let gen_jobs =
  QCheck.make
    QCheck.Gen.(
      list_size (int_range 1 25)
        (triple (int_range 1 16) (float_range 0.5 30.) (float_range 0. 50.)))

let no_oversubscription ~procs (r : B.result) =
  (* sweep the start/finish breakpoints *)
  let points =
    List.concat_map (fun (p : B.placement) -> [ p.B.start; p.B.finish ]) r.B.placements
  in
  List.for_all
    (fun t ->
      let used =
        List.fold_left
          (fun acc (p : B.placement) ->
            if p.B.start <= t +. 1e-9 && t +. 1e-9 < p.B.finish then
              acc + p.B.job.B.procs
            else acc)
          0 r.B.placements
      in
      used <= procs)
    points

let prop_capacity_respected =
  QCheck.Test.make ~name:"no oversubscription (FCFS and EASY)" ~count:150
    gen_jobs
    (fun specs ->
      let procs = 16 in
      let jobs =
        List.mapi
          (fun id (p, wall, submit) ->
            B.job ~id ~submit ~procs:p ~walltime:wall ~runtime:wall)
          specs
      in
      no_oversubscription ~procs (B.fcfs ~procs jobs)
      && no_oversubscription ~procs (B.easy_backfilling ~procs jobs))

let prop_starts_after_submit =
  QCheck.Test.make ~name:"every job starts at or after its submit time"
    ~count:150 gen_jobs
    (fun specs ->
      let jobs =
        List.mapi
          (fun id (p, wall, submit) ->
            B.job ~id ~submit ~procs:p ~walltime:wall ~runtime:(wall /. 2.))
          specs
      in
      List.for_all
        (fun (p : B.placement) -> p.B.start >= p.B.job.B.submit -. 1e-9)
        (B.easy_backfilling ~procs:16 jobs).B.placements)

let prop_all_jobs_placed =
  QCheck.Test.make ~name:"every submitted job is placed exactly once"
    ~count:150 gen_jobs
    (fun specs ->
      let jobs =
        List.mapi
          (fun id (p, wall, submit) ->
            B.job ~id ~submit ~procs:p ~walltime:wall ~runtime:wall)
          specs
      in
      let r = B.easy_backfilling ~procs:16 jobs in
      List.length r.B.placements = List.length jobs
      && List.for_all2
           (fun (p : B.placement) (job : B.job) -> p.B.job.B.id = job.B.id)
           r.B.placements
           (List.sort (fun (a : B.job) b -> compare a.B.id b.B.id) jobs))

let () =
  Alcotest.run "batch"
    [
      ( "construction",
        [ Alcotest.test_case "validation" `Quick test_job_validation ] );
      ( "fcfs",
        [
          Alcotest.test_case "single job" `Quick test_single_job;
          Alcotest.test_case "parallel fit" `Quick test_parallel_fit;
          Alcotest.test_case "blocking" `Quick test_fcfs_blocks;
          Alcotest.test_case "arrivals over time" `Quick
            test_arrivals_over_time;
          Alcotest.test_case "metrics" `Quick test_metrics;
        ] );
      ( "easy",
        [
          Alcotest.test_case "backfills short job" `Quick
            test_easy_backfills_short_job;
          Alcotest.test_case "extra-procs rule" `Quick
            test_easy_extra_procs_rule;
          Alcotest.test_case "never delays head" `Quick
            test_easy_never_delays_head;
          Alcotest.test_case "early completion" `Quick
            test_early_completion_helps;
          Alcotest.test_case "kill at walltime" `Quick test_kill_at_walltime;
          Alcotest.test_case "zero runtime" `Quick test_zero_runtime_job;
          Alcotest.test_case "simultaneous arrivals" `Quick
            test_simultaneous_arrivals_fifo;
          Alcotest.test_case "empty workload" `Quick test_empty_workload;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_capacity_respected;
            prop_starts_after_submit;
            prop_all_jobs_placed;
          ] );
    ]
