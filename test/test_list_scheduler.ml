(* Tests for the bottom-level list scheduler: hand-computed schedules
   and the validity/equivalence properties the EA's fitness relies on. *)

module LS = Emts_sched.List_scheduler
module Schedule = Emts_sched.Schedule
module Graph = Emts_ptg.Graph

let check_float = Alcotest.(check (float 1e-9))

let test_single_task () =
  let g = Emts_daggen.Shapes.independent 1 in
  let s = LS.run ~graph:g ~times:[| 3. |] ~alloc:[| 2 |] ~procs:4 in
  check_float "makespan" 3. (Schedule.makespan s);
  Alcotest.(check (array int)) "first-fit procs" [| 0; 1 |]
    (Schedule.entry s 0).Schedule.procs

let test_chain_serialises () =
  let g = Emts_daggen.Shapes.chain 3 in
  let s =
    LS.run ~graph:g ~times:[| 1.; 2.; 3. |] ~alloc:[| 1; 2; 3 |] ~procs:3
  in
  check_float "makespan = sum" 6. (Schedule.makespan s);
  check_float "t1 starts at 1" 1. (Schedule.entry s 1).Schedule.start;
  check_float "t2 starts at 3" 3. (Schedule.entry s 2).Schedule.start

let test_independent_pack () =
  (* 4 unit tasks of 1 proc each on 2 procs: two waves. *)
  let g = Emts_daggen.Shapes.independent 4 in
  let s =
    LS.run ~graph:g ~times:(Array.make 4 1.) ~alloc:(Array.make 4 1) ~procs:2
  in
  check_float "two waves" 2. (Schedule.makespan s)

let test_priority_by_bottom_level () =
  (* Two independent tasks, one long one short, one processor: the long
     one (higher bottom level) must be scheduled first. *)
  let g = Emts_daggen.Shapes.independent 2 in
  let s = LS.run ~graph:g ~times:[| 1.; 5. |] ~alloc:[| 1; 1 |] ~procs:1 in
  check_float "long task first" 0. (Schedule.entry s 1).Schedule.start;
  check_float "short task second" 5. (Schedule.entry s 0).Schedule.start

let test_diamond_parallel_branches () =
  let g = Testutil.diamond_graph () in
  (* times 1 each, allocs 1, two procs: 0; then 1 and 2 in parallel; then 3 *)
  let s =
    LS.run ~graph:g ~times:(Array.make 4 1.) ~alloc:(Array.make 4 1) ~procs:2
  in
  check_float "makespan" 3. (Schedule.makespan s);
  check_float "branch 1 at t=1" 1. (Schedule.entry s 1).Schedule.start;
  check_float "branch 2 at t=1" 1. (Schedule.entry s 2).Schedule.start

let test_wide_task_waits_for_procs () =
  (* task 1 needs both procs but an unrelated task holds one: it waits. *)
  let g = Emts_daggen.Shapes.independent 2 in
  let s = LS.run ~graph:g ~times:[| 4.; 1. |] ~alloc:[| 1; 2 |] ~procs:2 in
  (* bottom levels: t0=4 > t1=1, so t0 first on proc 0; t1 needs 2 procs,
     must wait until t0 finishes. *)
  check_float "wide task delayed" 4. (Schedule.entry s 1).Schedule.start;
  check_float "makespan" 5. (Schedule.makespan s)

let test_no_backfilling () =
  (* CPA-style semantics: a task is "ready" once its predecessors are
     *scheduled* (not finished), and ready tasks are consumed strictly
     by decreasing bottom level.  Hence the wide successor c (bl = 2)
     is placed before the independent low-priority task d (bl = 1), and
     d does NOT backfill the idle hole on processor 1. *)
  let b = Graph.Builder.create () in
  let a = Graph.Builder.add_task ~name:"left" ~flop:1. b in
  let c = Graph.Builder.add_task ~name:"wide" ~flop:1. b in
  let d = Graph.Builder.add_task ~name:"small" ~flop:1. b in
  Graph.Builder.add_edge b ~src:a ~dst:c;
  let g = Graph.Builder.build b in
  (* times: a=2, c(wide, 2 procs)=2, d=1.  bl: a=4, c=2, d=1. *)
  let s = LS.run ~graph:g ~times:[| 2.; 2.; 1. |] ~alloc:[| 1; 2; 1 |] ~procs:2 in
  ignore (a, d);
  check_float "wide task right after its parent" 2.
    (Schedule.entry s 1).Schedule.start;
  check_float "low-priority task goes last" 4.
    (Schedule.entry s 2).Schedule.start;
  check_float "makespan" 5. (Schedule.makespan s)

let test_input_validation () =
  let g = Emts_daggen.Shapes.independent 2 in
  let reject label f =
    Alcotest.(check bool) label true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  reject "times length" (fun () ->
      LS.run ~graph:g ~times:[| 1. |] ~alloc:[| 1; 1 |] ~procs:2);
  reject "alloc length" (fun () ->
      LS.run ~graph:g ~times:[| 1.; 1. |] ~alloc:[| 1 |] ~procs:2);
  reject "alloc too large" (fun () ->
      LS.run ~graph:g ~times:[| 1.; 1. |] ~alloc:[| 3; 1 |] ~procs:2);
  reject "alloc zero" (fun () ->
      LS.run ~graph:g ~times:[| 1.; 1. |] ~alloc:[| 0; 1 |] ~procs:2);
  reject "negative time" (fun () ->
      LS.run ~graph:g ~times:[| -1.; 1. |] ~alloc:[| 1; 1 |] ~procs:2);
  reject "NaN time" (fun () ->
      LS.run ~graph:g ~times:[| nan; 1. |] ~alloc:[| 1; 1 |] ~procs:2)

let test_makespan_bounded () =
  let g = Emts_daggen.Shapes.chain 3 in
  let times = [| 1.; 2.; 3. |] and alloc = [| 1; 1; 1 |] in
  (* full makespan is 6 *)
  (match LS.makespan_bounded ~graph:g ~times ~alloc ~procs:2 ~cutoff:infinity with
  | Some m -> check_float "no cutoff" 6. m
  | None -> Alcotest.fail "rejected with infinite cutoff");
  (match LS.makespan_bounded ~graph:g ~times ~alloc ~procs:2 ~cutoff:6. with
  | Some m -> check_float "cutoff = makespan accepted" 6. m
  | None -> Alcotest.fail "rejected at exact cutoff");
  Alcotest.(check bool) "tight cutoff rejects" true
    (LS.makespan_bounded ~graph:g ~times ~alloc ~procs:2 ~cutoff:5.9 = None);
  Alcotest.(check bool) "NaN cutoff rejected" true
    (try
       ignore (LS.makespan_bounded ~graph:g ~times ~alloc ~procs:2 ~cutoff:nan);
       false
     with Invalid_argument _ -> true)

let test_priority_policies () =
  (* Two independent tasks, one processor: Bottom_level runs the long
     one first; a static priority can force the opposite order. *)
  let g = Emts_daggen.Shapes.independent 2 in
  let times = [| 1.; 5. |] and alloc = [| 1; 1 |] in
  let s =
    LS.run_prioritized ~priority:LS.Bottom_level ~graph:g ~times ~alloc
      ~procs:1
  in
  check_float "bl: long first" 0. (Schedule.entry s 1).Schedule.start;
  let s =
    LS.run_prioritized
      ~priority:(LS.Static [| 10.; 1. |])
      ~graph:g ~times ~alloc ~procs:1
  in
  check_float "static: short first" 0. (Schedule.entry s 0).Schedule.start;
  (* Top_level_first: sources tie at top level 0, then ids break ties *)
  let s =
    LS.run_prioritized ~priority:LS.Top_level_first ~graph:g ~times ~alloc
      ~procs:1
  in
  check_float "tlf: id order" 0. (Schedule.entry s 0).Schedule.start;
  (* validation *)
  Alcotest.(check bool) "static length checked" true
    (try
       ignore
         (LS.run_prioritized ~priority:(LS.Static [| 1. |]) ~graph:g ~times
            ~alloc ~procs:1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "NaN priority rejected" true
    (try
       ignore
         (LS.run_prioritized
            ~priority:(LS.Static [| nan; 1. |])
            ~graph:g ~times ~alloc ~procs:1);
       false
     with Invalid_argument _ -> true)

let test_heap_equal_priorities () =
  (* Adversarial heap content: many tasks with bitwise-equal priorities
     in the ready heap at once.  The tie-break is the task id, so pops —
     and hence start times on a single processor — must come out in id
     order no matter how the sift pattern shuffles equal keys. *)
  let n = 33 in
  let g = Emts_daggen.Shapes.independent n in
  let times = Array.make n 1. and alloc = Array.make n 1 in
  let check_id_order label s =
    for v = 0 to n - 1 do
      check_float
        (Printf.sprintf "%s: task %d" label v)
        (float_of_int v)
        (Schedule.entry s v).Schedule.start
    done
  in
  check_id_order "equal bottom levels" (LS.run ~graph:g ~times ~alloc ~procs:1);
  check_id_order "equal static priorities"
    (LS.run_prioritized
       ~priority:(LS.Static (Array.make n 3.14))
       ~graph:g ~times ~alloc ~procs:1);
  check_id_order "equal top levels"
    (LS.run_prioritized ~priority:LS.Top_level_first ~graph:g ~times ~alloc
       ~procs:1);
  (* -0. and +0. compare equal, so they are a tie, not an ordering:
     task 0 keeps its id-order advantage either way *)
  let g2 = Emts_daggen.Shapes.independent 2 in
  let s =
    LS.run_prioritized
      ~priority:(LS.Static [| -0.; 0. |])
      ~graph:g2 ~times:[| 1.; 1. |] ~alloc:[| 1; 1 |] ~procs:1
  in
  check_float "-0/+0 tie: id order" 0. (Schedule.entry s 0).Schedule.start

(* --- properties --- *)

let procs = 16

let times_of (g, alloc) =
  let tables =
    Emts_model.Memo.tabulate_graph Emts_model.synthetic
      (Emts_platform.make ~name:"p16" ~processors:procs ~speed_gflops:1.)
      g
  in
  Emts_sched.Allocation.times_of_tables alloc ~tables

let prop_schedule_always_valid =
  QCheck.Test.make ~name:"produced schedules validate" ~count:200
    (Testutil.arbitrary_dag_alloc ~procs ())
    (fun (g, alloc) ->
      let times = times_of (g, alloc) in
      let s = LS.run ~graph:g ~times ~alloc ~procs in
      Schedule.validate ~alloc s ~graph:g = Ok ())

let prop_makespan_fast_path_agrees =
  QCheck.Test.make ~name:"makespan = Schedule.makespan (run ...)" ~count:200
    (Testutil.arbitrary_dag_alloc ~procs ())
    (fun (g, alloc) ->
      let times = times_of (g, alloc) in
      let fast = LS.makespan ~graph:g ~times ~alloc ~procs in
      let full = Schedule.makespan (LS.run ~graph:g ~times ~alloc ~procs) in
      Float.abs (fast -. full) < 1e-9)

let prop_makespan_bounds =
  QCheck.Test.make ~name:"CP length <= makespan <= sum of times" ~count:200
    (Testutil.arbitrary_dag_alloc ~procs ())
    (fun (g, alloc) ->
      let times = times_of (g, alloc) in
      let m = LS.makespan ~graph:g ~times ~alloc ~procs in
      let cp =
        Emts_ptg.Analysis.critical_path_length g ~time:(fun v -> times.(v))
      in
      let total = Array.fold_left ( +. ) 0. times in
      cp -. 1e-9 <= m && m <= total +. 1e-9)

let prop_any_priority_schedule_valid =
  QCheck.Test.make ~name:"schedules valid under every priority policy"
    ~count:100
    QCheck.(pair (Testutil.arbitrary_dag_alloc ~procs ()) small_int)
    (fun ((g, alloc), seed) ->
      let times = times_of (g, alloc) in
      let rng = Emts_prng.create ~seed () in
      let random =
        Array.init (Graph.task_count g) (fun _ -> Emts_prng.float rng 1.)
      in
      List.for_all
        (fun priority ->
          let s = LS.run_prioritized ~priority ~graph:g ~times ~alloc ~procs in
          Schedule.validate ~alloc s ~graph:g = Ok ())
        [ LS.Bottom_level; LS.Top_level_first; LS.Static random ])

let prop_bounded_agrees_with_makespan =
  QCheck.Test.make
    ~name:"makespan_bounded: Some iff makespan <= cutoff, same value"
    ~count:200
    QCheck.(pair (Testutil.arbitrary_dag_alloc ~procs ()) (float_range 0. 2.))
    (fun ((g, alloc), cutoff_factor) ->
      let times = times_of (g, alloc) in
      let m = LS.makespan ~graph:g ~times ~alloc ~procs in
      let cutoff = cutoff_factor *. m in
      match LS.makespan_bounded ~graph:g ~times ~alloc ~procs ~cutoff with
      | Some m' -> m <= cutoff +. 1e-9 && Float.abs (m -. m') < 1e-9
      | None -> m > cutoff)

let prop_deterministic =
  QCheck.Test.make ~name:"scheduling is deterministic" ~count:100
    (Testutil.arbitrary_dag_alloc ~procs ())
    (fun (g, alloc) ->
      let times = times_of (g, alloc) in
      let s1 = LS.run ~graph:g ~times ~alloc ~procs in
      let s2 = LS.run ~graph:g ~times ~alloc ~procs in
      Schedule.entries s1 = Schedule.entries s2)

let () =
  Alcotest.run "list_scheduler"
    [
      ( "hand-computed",
        [
          Alcotest.test_case "single task" `Quick test_single_task;
          Alcotest.test_case "chain" `Quick test_chain_serialises;
          Alcotest.test_case "independent pack" `Quick test_independent_pack;
          Alcotest.test_case "priority order" `Quick
            test_priority_by_bottom_level;
          Alcotest.test_case "diamond" `Quick test_diamond_parallel_branches;
          Alcotest.test_case "wide task waits" `Quick
            test_wide_task_waits_for_procs;
          Alcotest.test_case "no backfilling" `Quick test_no_backfilling;
          Alcotest.test_case "input validation" `Quick test_input_validation;
          Alcotest.test_case "bounded makespan" `Quick test_makespan_bounded;
          Alcotest.test_case "priority policies" `Quick test_priority_policies;
          Alcotest.test_case "heap equal priorities" `Quick
            test_heap_equal_priorities;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_schedule_always_valid;
            prop_makespan_fast_path_agrees;
            prop_makespan_bounds;
            prop_bounded_agrees_with_makespan;
            prop_any_priority_schedule_valid;
            prop_deterministic;
          ] );
    ]
