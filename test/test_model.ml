(* Tests for Emts_model: Amdahl (Model 1), the synthetic non-monotone
   Model 2, Downey's model, empirical tables, combinators. *)

module M = Emts_model
module P = Emts_platform
module Task = Emts_ptg.Task

let check_float = Alcotest.(check (float 1e-9))
let check_close = Alcotest.(check (float 1e-6))

(* A task whose sequential time on chti is exactly 10 s. *)
let task_10s = Task.make ~id:0 ~flop:(10. *. 4.3e9) ~alpha:0.2 ()

let test_sequential_time () =
  check_close "anchored" 10. (M.sequential_time P.chti task_10s)

let test_amdahl_formula () =
  (* T(v,p) = (alpha + (1-alpha)/p) * T1, alpha = 0.2, T1 = 10 *)
  check_close "p=1" 10. (M.time M.amdahl P.chti task_10s ~procs:1);
  check_close "p=2" 6. (M.time M.amdahl P.chti task_10s ~procs:2);
  check_close "p=4" 4. (M.time M.amdahl P.chti task_10s ~procs:4);
  check_close "p=8" 3. (M.time M.amdahl P.chti task_10s ~procs:8);
  (* limit: alpha * T1 = 2 s, never reached *)
  Alcotest.(check bool)
    "asymptote" true
    (M.time M.amdahl P.chti task_10s ~procs:20 > 2.)

let test_amdahl_perfectly_parallel () =
  let t = Task.make ~id:0 ~flop:4.3e9 ~alpha:0. () in
  check_close "linear speedup" 0.25 (M.time M.amdahl P.chti t ~procs:4)

let test_amdahl_serial_task () =
  let t = Task.make ~id:0 ~flop:4.3e9 ~alpha:1. () in
  check_close "alpha=1 never speeds up" 1. (M.time M.amdahl P.chti t ~procs:16)

let test_procs_range_checked () =
  Alcotest.(check bool)
    "procs=0 rejected" true
    (try
       ignore (M.time M.amdahl P.chti task_10s ~procs:0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "procs>P rejected" true
    (try
       ignore (M.time M.amdahl P.chti task_10s ~procs:21);
       false
     with Invalid_argument _ -> true)

let test_synthetic_penalties () =
  let amdahl p = M.time M.amdahl P.chti task_10s ~procs:p in
  let synth p = M.time M.synthetic P.chti task_10s ~procs:p in
  check_close "p=1 no penalty" (amdahl 1) (synth 1);
  check_close "p=2 even non-square: x1.1" (1.1 *. amdahl 2) (synth 2);
  check_close "p=3 odd: x1.3" (1.3 *. amdahl 3) (synth 3);
  check_close "p=4 square: clean" (amdahl 4) (synth 4);
  check_close "p=6 even non-square: x1.1" (1.1 *. amdahl 6) (synth 6);
  check_close "p=9 odd: x1.3 (odd beats square)" (1.3 *. amdahl 9) (synth 9);
  check_close "p=16 square: clean" (amdahl 16) (synth 16)

let test_monotonicity () =
  Alcotest.(check bool)
    "Model 1 is monotone" true
    (M.is_monotone M.amdahl P.grelon task_10s);
  Alcotest.(check bool)
    "Model 2 is not" false
    (M.is_monotone M.synthetic P.grelon task_10s)

let test_downey_properties () =
  (* task_10s is anchored to chti's speed; use grelon only for its
     processor range via an equally-fast custom platform. *)
  let wide = P.make ~name:"wide" ~processors:120 ~speed_gflops:4.3 in
  let m = M.downey ~avg_parallelism:16. ~variance:0.5 in
  let t p = M.time m wide task_10s ~procs:p in
  check_close "p=1 sequential" 10. (t 1);
  Alcotest.(check bool) "monotone" true (M.is_monotone m wide task_10s);
  (* speedup saturates at A: time floor is T1 / A *)
  Alcotest.(check bool) "saturation" true (Float.abs (t 120 -. (10. /. 16.)) < 1e-6);
  (* high-variance variant is also sane *)
  let hv = M.downey ~avg_parallelism:8. ~variance:4. in
  Alcotest.(check bool) "hv monotone" true (M.is_monotone hv wide task_10s);
  Alcotest.(check bool)
    "bad params rejected" true
    (try
       ignore (M.downey ~avg_parallelism:0.5 ~variance:1.);
       false
     with Invalid_argument _ -> true)

let test_empirical_lookup () =
  let table = M.Empirical.of_points [ (4, 2.0); (2, 3.0); (8, 1.5) ] in
  check_float "exact hit" 3.0 (M.Empirical.lookup table ~procs:2);
  check_float "another exact" 1.5 (M.Empirical.lookup table ~procs:8);
  check_float "interpolated" 2.5 (M.Empirical.lookup table ~procs:3);
  check_float "clamped below" 3.0 (M.Empirical.lookup table ~procs:1);
  check_float "clamped above" 1.5 (M.Empirical.lookup table ~procs:100);
  (* duplicates: last wins *)
  let dup = M.Empirical.of_points [ (2, 1.0); (2, 9.0) ] in
  check_float "last duplicate wins" 9.0 (M.Empirical.lookup dup ~procs:2)

let test_empirical_validation () =
  Alcotest.(check bool)
    "empty rejected" true
    (try
       ignore (M.Empirical.of_points []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "non-positive procs rejected" true
    (try
       ignore (M.Empirical.of_points [ (0, 1.) ]);
       false
     with Invalid_argument _ -> true)

let test_pdgemm_tables_non_monotone () =
  let count_violations table lo hi =
    let v = ref 0 in
    for p = lo + 1 to hi do
      if
        M.Empirical.lookup table ~procs:p
        > M.Empirical.lookup table ~procs:(p - 1) +. 1e-12
      then incr v
    done;
    !v
  in
  Alcotest.(check bool)
    "1024 violates monotonicity" true
    (count_violations M.Empirical.pdgemm_1024 2 32 > 0);
  Alcotest.(check bool)
    "2048 violates monotonicity" true
    (count_violations M.Empirical.pdgemm_2048 16 32 > 0)

let test_empirical_file_format () =
  let table = M.Empirical.of_points [ (2, 0.21); (4, 0.11); (8, 0.061) ] in
  (match M.Empirical.of_string (M.Empirical.to_string table) with
  | Ok table' ->
    for p = 1 to 10 do
      check_float
        (Printf.sprintf "round-trip at %d" p)
        (M.Empirical.lookup table ~procs:p)
        (M.Empirical.lookup table' ~procs:p)
    done
  | Error e -> Alcotest.fail e);
  (match M.Empirical.of_string "# pdgemm\n\n2 0.2\n4 0.1\n" with
  | Ok t -> check_float "comments skipped" 0.2 (M.Empirical.lookup t ~procs:2)
  | Error e -> Alcotest.fail e);
  let bad text =
    match M.Empirical.of_string text with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "garbage rejected" true (bad "two 0.2\n");
  Alcotest.(check bool) "wrong arity rejected" true (bad "2 0.2 7\n");
  Alcotest.(check bool) "empty rejected" true (bad "# only comments\n");
  Alcotest.(check bool) "non-positive rejected" true (bad "0 1.0\n");
  (* save / load *)
  let path = Filename.temp_file "emts_model" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      M.Empirical.save table path;
      match M.Empirical.load path with
      | Ok t -> check_float "loaded" 0.11 (M.Empirical.lookup t ~procs:4)
      | Error e -> Alcotest.fail e)

let test_empirical_model_wrapper () =
  let table = M.Empirical.of_points [ (1, 5.); (2, 3.) ] in
  let m = M.Empirical.model ~name:"tbl" table in
  check_float "ignores task, replays table" 3.
    (M.time m P.chti task_10s ~procs:2)

let test_with_penalty () =
  let bumpy =
    M.with_penalty ~base:M.amdahl
      ~penalty:(fun p -> if p mod 5 = 0 then 2. else 1.)
      ~name:"bumpy"
  in
  check_close "penalised point"
    (2. *. M.time M.amdahl P.chti task_10s ~procs:5)
    (M.time bumpy P.chti task_10s ~procs:5);
  check_close "clean point"
    (M.time M.amdahl P.chti task_10s ~procs:4)
    (M.time bumpy P.chti task_10s ~procs:4);
  let broken = M.with_penalty ~base:M.amdahl ~penalty:(fun _ -> 0.) ~name:"x" in
  Alcotest.(check bool)
    "non-positive penalty rejected" true
    (try
       ignore (M.time broken P.chti task_10s ~procs:2);
       false
     with Invalid_argument _ -> true)

let test_monotonized () =
  let mono = M.monotonized M.synthetic in
  Alcotest.(check bool) "always monotone" true
    (M.is_monotone mono P.grelon task_10s);
  (* prefix-min: at every p the monotonized time is the best raw time
     over 1..p, never above the raw time *)
  for p = 1 to 20 do
    let raw = M.time M.synthetic P.chti task_10s ~procs:p in
    let m = M.time mono P.chti task_10s ~procs:p in
    Alcotest.(check bool) "below raw" true (m <= raw +. 1e-12);
    let best = ref infinity in
    for q = 1 to p do
      best := Float.min !best (M.time M.synthetic P.chti task_10s ~procs:q)
    done;
    check_close (Printf.sprintf "prefix-min at %d" p) !best m
  done;
  (* monotonizing a monotone model is the identity *)
  for p = 1 to 20 do
    check_close "amdahl unchanged"
      (M.time M.amdahl P.chti task_10s ~procs:p)
      (M.time (M.monotonized M.amdahl) P.chti task_10s ~procs:p)
  done

let prop_monotonized_always_monotone =
  QCheck.Test.make ~name:"monotonized models are monotone" ~count:100
    QCheck.(pair (float_range 0. 1.) (float_range 1e8 1e12))
    (fun (alpha, flop) ->
      let t = Emts_ptg.Task.make ~id:0 ~flop ~alpha () in
      M.is_monotone (M.monotonized M.synthetic) P.grelon t)

let test_memo_tabulate () =
  let table = M.Memo.tabulate M.synthetic P.chti task_10s in
  Alcotest.(check int) "covers platform" 20 (Array.length table);
  for p = 1 to 20 do
    check_float
      (Printf.sprintf "entry %d" p)
      (M.time M.synthetic P.chti task_10s ~procs:p)
      table.(p - 1)
  done

let test_memo_tabulate_graph () =
  let g = Testutil.diamond_graph () in
  let tables = M.Memo.tabulate_graph M.amdahl P.chti g in
  Alcotest.(check int) "one row per task" 4 (Array.length tables);
  Array.iter
    (fun row -> Alcotest.(check int) "row width" 20 (Array.length row))
    tables

let test_find_preset () =
  Alcotest.(check bool) "amdahl" true (M.find_preset "amdahl" <> None);
  Alcotest.(check bool) "model1 alias" true (M.find_preset "Model1" <> None);
  Alcotest.(check bool) "model2 alias" true (M.find_preset "MODEL2" <> None);
  Alcotest.(check bool) "unknown" true (M.find_preset "quantum" = None)

let prop_amdahl_monotone =
  QCheck.Test.make ~name:"Amdahl time non-increasing in procs" ~count:200
    QCheck.(pair (float_range 0. 1.) (float_range 1e6 1e12))
    (fun (alpha, flop) ->
      let t = Task.make ~id:0 ~flop ~alpha () in
      M.is_monotone M.amdahl P.grelon t)

let prop_synthetic_bounded_by_penalty =
  QCheck.Test.make
    ~name:"Model 2 within [1x, 1.3x] of Model 1 everywhere" ~count:200
    QCheck.(pair (float_range 0. 1.) (int_range 1 120))
    (fun (alpha, procs) ->
      let t = Task.make ~id:0 ~flop:1e10 ~alpha () in
      let base = M.time M.amdahl P.grelon t ~procs in
      let synth = M.time M.synthetic P.grelon t ~procs in
      synth >= base -. 1e-12 && synth <= (1.3 *. base) +. 1e-9)

let () =
  Alcotest.run "model"
    [
      ( "amdahl",
        [
          Alcotest.test_case "sequential anchor" `Quick test_sequential_time;
          Alcotest.test_case "formula" `Quick test_amdahl_formula;
          Alcotest.test_case "alpha=0" `Quick test_amdahl_perfectly_parallel;
          Alcotest.test_case "alpha=1" `Quick test_amdahl_serial_task;
          Alcotest.test_case "range checks" `Quick test_procs_range_checked;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "penalties" `Quick test_synthetic_penalties;
          Alcotest.test_case "monotonicity" `Quick test_monotonicity;
        ] );
      ("downey", [ Alcotest.test_case "properties" `Quick test_downey_properties ]);
      ( "empirical",
        [
          Alcotest.test_case "lookup" `Quick test_empirical_lookup;
          Alcotest.test_case "validation" `Quick test_empirical_validation;
          Alcotest.test_case "pdgemm shape" `Quick
            test_pdgemm_tables_non_monotone;
          Alcotest.test_case "file format" `Quick test_empirical_file_format;
          Alcotest.test_case "model wrapper" `Quick test_empirical_model_wrapper;
        ] );
      ( "combinators",
        [
          Alcotest.test_case "with_penalty" `Quick test_with_penalty;
          Alcotest.test_case "monotonized" `Quick test_monotonized;
          Alcotest.test_case "tabulate" `Quick test_memo_tabulate;
          Alcotest.test_case "tabulate_graph" `Quick test_memo_tabulate_graph;
          Alcotest.test_case "find_preset" `Quick test_find_preset;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_amdahl_monotone;
            prop_synthetic_bounded_by_penalty;
            prop_monotonized_always_monotone;
          ] );
    ]
