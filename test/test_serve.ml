(* Tests for the serving subsystem: frame codec, request/response JSON,
   engine determinism across pool widths, deadline best-so-far
   behaviour, the instance-keyed cache pool, and an in-process
   end-to-end daemon exchange. *)

module Protocol = Emts_serve.Protocol
module Engine = Emts_serve.Engine
module Server = Emts_serve.Server
module J = Emts_resilience.Json

let graph_string ?(tasks = 12) ?(seed = 11) () =
  let rng = Emts_prng.create ~seed () in
  Emts_ptg.Serial.to_string
    (Testutil.costed_daggen rng ~n:tasks ~density:0.5)

let schedule_req ?(algorithm = "emts5") ?(seed = 7) ?deadline_s ?budget_s
    ?trace_id ptg =
  Protocol.Request.schedule ~algorithm ~seed ?deadline_s ?budget_s ?trace_id
    ~ptg ()

(* --- framing --- *)

let with_pipe f =
  let r, w = Unix.pipe ~cloexec:true () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

let frame_error =
  Alcotest.testable
    (fun fmt e -> Format.pp_print_string fmt (Protocol.frame_error_to_string e))
    ( = )

let read_result =
  Alcotest.(result string frame_error)

let test_frame_round_trip () =
  with_pipe @@ fun r w ->
  let payloads = [ ""; "x"; String.make 1000 '\xff'; "{\"verb\":\"ping\"}" ] in
  List.iter
    (fun payload ->
      Protocol.write_frame w payload;
      Alcotest.check read_result "round trip" (Ok payload)
        (Protocol.read_frame r ~max_size:Protocol.default_max_frame))
    payloads

let test_frame_closed_and_truncated () =
  with_pipe (fun r w ->
      Unix.close w;
      Alcotest.check read_result "eof at boundary" (Error Protocol.Closed)
        (Protocol.read_frame r ~max_size:16));
  with_pipe (fun r w ->
      let partial = String.sub (Protocol.encode_frame "hello") 0 6 in
      let _ = Unix.write_substring w partial 0 (String.length partial) in
      Unix.close w;
      Alcotest.check read_result "eof inside header" (Error Protocol.Truncated)
        (Protocol.read_frame r ~max_size:16));
  with_pipe (fun r w ->
      let frame = Protocol.encode_frame "hello" in
      let _ = Unix.write_substring w frame 0 (String.length frame - 2) in
      Unix.close w;
      Alcotest.check read_result "eof inside payload" (Error Protocol.Truncated)
        (Protocol.read_frame r ~max_size:16))

let test_frame_bad_magic_and_too_large () =
  with_pipe (fun r w ->
      let junk = "XMTS\x00\x00\x00\x01z" in
      let _ = Unix.write_substring w junk 0 (String.length junk) in
      Alcotest.check read_result "magic" (Error Protocol.Bad_magic)
        (Protocol.read_frame r ~max_size:16));
  with_pipe (fun r w ->
      (* The length field announces more than the cap; the refusal must
         come from the header alone, before any payload arrives. *)
      let header = "EMTS\x00\x10\x00\x00" in
      let _ = Unix.write_substring w header 0 (String.length header) in
      Alcotest.check read_result "too large"
        (Error (Protocol.Too_large 0x100000))
        (Protocol.read_frame r ~max_size:16))

(* --- request / response JSON --- *)

(* One canonical request per wire verb.  The table is driven by
   [Protocol.Request.verbs] — adding a verb to the protocol without
   extending this function fails the round-trip test instead of
   silently skipping coverage. *)
let canonical_request = function
  | "ping" -> Protocol.Request.Ping { id = J.Str "a" }
  | "stats" -> Protocol.Request.Stats { id = J.Num 3. }
  | "metrics" -> Protocol.Request.Metrics { id = J.Str "m" }
  | "health" -> Protocol.Request.Health { id = J.Str "h" }
  | "schedule" ->
    Protocol.Request.Schedule
      {
        id = J.Null;
        req =
          schedule_req ~algorithm:"mcpa" ~seed:123 ~deadline_s:1.5
            ~budget_s:0.25 "graph text\nwith lines";
      }
  | "migrate" ->
    Protocol.Request.Migrate
      {
        id = J.Str "mg";
        ptg = "g";
        platform = "grelon";
        model = "amdahl";
        migrants = [ [| 1; 2 |]; [| 2; 2 |] ];
      }
  | "submit" ->
    Protocol.Request.Submit
      {
        id = J.Str "sub";
        session = "s1";
        ptg = "g";
        at = 2.5;
        platform = "grelon";
        model = "amdahl";
        algorithm = "emts5";
        seed = 42;
        islands = 2;
        migration_interval = 3;
        migration_count = 1;
      }
  | "advance" ->
    Protocol.Request.Advance { id = J.Str "adv"; session = "s1"; to_ = Some 7.25 }
  | v ->
    Alcotest.fail
      (Printf.sprintf
         "verb %S has no canonical request — extend canonical_request" v)

let test_request_round_trip () =
  let reqs =
    List.map canonical_request Protocol.Request.verbs
    @ [
        Protocol.Request.Schedule
          { id = J.Str "t"; req = schedule_req ~trace_id:"t1f3a-9.B_x" "g" };
        (* islands = 1 omits the island fields on the wire *)
        Protocol.Request.Submit
          {
            id = J.Null;
            session = "s2";
            ptg = "g";
            at = 0.;
            platform = "grelon";
            model = "amdahl";
            algorithm = "baseline";
            seed = 0x5EED_CA11;
            islands = 1;
            migration_interval = 5;
            migration_count = 1;
          };
        (* no "to" field: run the admitted workload to completion *)
        Protocol.Request.Advance { id = J.Str "a0"; session = "s2"; to_ = None };
      ]
  in
  List.iter
    (fun r ->
      match Protocol.Request.of_string (Protocol.Request.to_string r) with
      | Ok r' ->
        Alcotest.(check bool) "round trip" true (r = r')
      | Error m -> Alcotest.fail m)
    reqs

let test_request_defaults_and_errors () =
  (match Protocol.Request.of_string {|{"verb":"schedule","ptg":"g"}|} with
  | Ok (Protocol.Request.Schedule { req; _ }) ->
    Alcotest.(check string) "platform default" "grelon" req.platform;
    Alcotest.(check string) "model default" "amdahl" req.model;
    Alcotest.(check string) "algorithm default" "emts5" req.algorithm
  | Ok _ -> Alcotest.fail "wrong verb"
  | Error m -> Alcotest.fail m);
  let bad s =
    match Protocol.Request.of_string s with
    | Ok _ -> Alcotest.fail ("accepted: " ^ s)
    | Error _ -> ()
  in
  bad "not json at all";
  bad {|{"ptg":"g"}|};
  bad {|{"verb":"schedule"}|};
  bad {|{"verb":"launch-missiles"}|};
  bad {|{"verb":"schedule","ptg":"g","deadline_s":-1}|};
  bad {|{"verb":"schedule","ptg":"g","budget_s":0}|};
  (* trace_id must be 1..64 chars of [A-Za-z0-9._-] when present *)
  bad {|{"verb":"schedule","ptg":"g","trace_id":123}|};
  bad {|{"verb":"schedule","ptg":"g","trace_id":""}|};
  bad {|{"verb":"schedule","ptg":"g","trace_id":"has space"}|};
  bad
    (Printf.sprintf {|{"verb":"schedule","ptg":"g","trace_id":"%s"}|}
       (String.make 65 'a'));
  (match
     Protocol.Request.of_string
       (Printf.sprintf {|{"verb":"schedule","ptg":"g","trace_id":"%s"}|}
          (String.make 64 'a'))
   with
  | Ok (Protocol.Request.Schedule { req; _ }) ->
    Alcotest.(check (option string)) "64-char trace_id accepted"
      (Some (String.make 64 'a'))
      req.trace_id
  | Ok _ -> Alcotest.fail "wrong verb"
  | Error m -> Alcotest.fail m);
  (* submit: session is mandatory and bounded, everything else mirrors
     schedule's defaults plus [at = 0] and one island *)
  (match
     Protocol.Request.of_string {|{"verb":"submit","session":"s","ptg":"g"}|}
   with
  | Ok
      (Protocol.Request.Submit
        { at; platform; model; algorithm; seed; islands; _ }) ->
    Alcotest.(check (float 0.)) "at defaults to 0" 0. at;
    Alcotest.(check string) "submit platform default" "grelon" platform;
    Alcotest.(check string) "submit model default" "amdahl" model;
    Alcotest.(check string) "submit algorithm default" "baseline" algorithm;
    Alcotest.(check int) "submit seed default" 0x5EED_CA11 seed;
    Alcotest.(check int) "submit islands default" 1 islands
  | Ok _ -> Alcotest.fail "wrong verb"
  | Error m -> Alcotest.fail m);
  bad {|{"verb":"submit","ptg":"g"}|};
  bad {|{"verb":"submit","session":"","ptg":"g"}|};
  bad
    (Printf.sprintf {|{"verb":"submit","session":"%s","ptg":"g"}|}
       (String.make 129 's'));
  bad {|{"verb":"submit","session":"s"}|};
  bad {|{"verb":"submit","session":"s","ptg":"g","at":-1}|};
  bad {|{"verb":"submit","session":"s","ptg":"g","at":"soon"}|};
  bad {|{"verb":"submit","session":"s","ptg":"g","islands":0}|};
  bad {|{"verb":"submit","session":"s","ptg":"g","migration_count":-1}|};
  (* advance: "to" optional (run to completion), never NaN or negative *)
  bad {|{"verb":"advance"}|};
  bad {|{"verb":"advance","session":""}|};
  bad {|{"verb":"advance","session":"s","to":-0.5}|};
  bad {|{"verb":"advance","session":"s","to":"later"}|};
  match Protocol.Request.of_string {|{"verb":"advance","session":"s"}|} with
  | Ok (Protocol.Request.Advance { to_; _ }) ->
    Alcotest.(check bool) "advance default runs to completion" true
      (to_ = None)
  | Ok _ -> Alcotest.fail "wrong verb"
  | Error m -> Alcotest.fail m

let test_response_round_trip () =
  let resps =
    [
      Protocol.Response.Pong { id = J.Str "a"; server = Server.server_id };
      Protocol.Response.Error
        {
          id = J.Null;
          code = Protocol.Error_code.overloaded;
          message = "queue full";
          retry_after_ms = None;
        };
      Protocol.Response.Error
        {
          id = J.Str "shed";
          code = Protocol.Error_code.overloaded;
          message = "shedding load";
          retry_after_ms = Some 120;
        };
      Protocol.Response.Error
        {
          id = J.Str "wd";
          code = Protocol.Error_code.deadline_exceeded;
          message = "watchdog";
          retry_after_ms = None;
        };
      Protocol.Response.Health
        { id = J.Str "h"; live = true; ready = false; draining = true;
          backends_live = None };
      Protocol.Response.Health
        { id = J.Str "h2"; live = true; ready = true; draining = false;
          backends_live = Some 2 };
      Protocol.Response.Migrate_ack { id = J.Str "mg"; accepted = 3 };
      Protocol.Response.Stats
        { id = J.Null; stats = J.Obj [ ("x", J.Num 1.) ] };
      Protocol.Response.Metrics
        { id = J.Str "m"; body = "# TYPE emts_x counter\nemts_x_total 1\n# EOF\n" };
      Protocol.Response.Schedule_result
        {
          id = J.Str "r1";
          algorithm = "EMTS5";
          makespan = 12.5;
          alloc = [| 1; 2; 3 |];
          tasks = 3;
          procs = 8;
          utilization = 83.25;
          platform = "grelon";
          queue_s = 0.001;
          solve_s = 0.25;
          total_s = 0.251;
          deadline_hit = false;
          generations_done = 5;
          evaluations = 129;
          trace_id = None;
        };
      Protocol.Response.Schedule_result
        {
          id = J.Str "r2";
          algorithm = "MCPA";
          makespan = 3.25;
          alloc = [| 2 |];
          tasks = 1;
          procs = 4;
          utilization = 10.;
          platform = "grelon";
          queue_s = 0.;
          solve_s = 0.01;
          total_s = 0.01;
          deadline_hit = true;
          generations_done = 0;
          evaluations = 0;
          trace_id = Some "t4cafe-1";
        };
      Protocol.Response.Submit_result
        { id = J.Str "sb"; session = "s1"; dag = 2; tasks = 37; now = 4.5;
          replans = 3 };
      Protocol.Response.Advance_result
        {
          id = J.Str "ad1";
          session = "s1";
          now = 9.25;
          committed = 14;
          drifts = 1;
          replans = 4;
          complete = false;
          makespan = None;
          bound = 8.75;
        };
      Protocol.Response.Advance_result
        {
          id = J.Null;
          session = "s2";
          now = 31.5;
          committed = 37;
          drifts = 0;
          replans = 3;
          complete = true;
          makespan = Some 31.5;
          bound = 28.;
        };
    ]
  in
  List.iter
    (fun r ->
      match Protocol.Response.of_string (Protocol.Response.to_string r) with
      | Ok r' -> Alcotest.(check bool) "round trip" true (r = r')
      | Error m -> Alcotest.fail m)
    resps

(* --- engine --- *)

let with_engine ?(pool_domains = 1) ?(capacity = 1024) f =
  let caches = Engine.caches ~capacity ~max_instances:4 in
  let e = Engine.create ~pool_domains ~caches () in
  Fun.protect ~finally:(fun () -> Engine.shutdown e) (fun () -> f caches e)

let handle_exn e req ~deadline =
  match Engine.handle e req ~deadline with
  | Ok o -> o
  | Error m -> Alcotest.fail m

(* The response to a request must be a function of the request alone:
   same outcome whatever the pool width and whether caches are on. *)
let test_engine_determinism () =
  let ptg = graph_string () in
  let outcomes =
    List.map
      (fun (pool_domains, capacity) ->
        with_engine ~pool_domains ~capacity (fun _ e ->
            handle_exn e (schedule_req ptg) ~deadline:None))
      [ (1, 1024); (3, 1024); (2, 0) ]
  in
  match outcomes with
  | first :: rest ->
    List.iter
      (fun o ->
        Alcotest.(check (float 0.)) "makespan" first.Engine.makespan
          o.Engine.makespan;
        Alcotest.(check (array int)) "alloc" first.Engine.alloc o.Engine.alloc)
      rest
  | [] -> assert false

let test_engine_repeat_hits_cache () =
  let ptg = graph_string () in
  with_engine (fun caches e ->
      let a = handle_exn e (schedule_req ptg) ~deadline:None in
      Alcotest.(check int) "one instance cached" 1
        (Engine.cache_instances caches);
      let b = handle_exn e (schedule_req ptg) ~deadline:None in
      Alcotest.(check (float 0.)) "same makespan" a.Engine.makespan
        b.Engine.makespan;
      Alcotest.(check (array int)) "same alloc" a.Engine.alloc b.Engine.alloc)

let test_engine_cache_instances_bounded () =
  with_engine (fun caches e ->
      for seed = 1 to 9 do
        ignore
          (handle_exn e (schedule_req (graph_string ~seed ())) ~deadline:None)
      done;
      Alcotest.(check bool) "bounded" true
        (Engine.cache_instances caches <= 4))

let test_engine_heuristic_and_errors () =
  let ptg = graph_string () in
  with_engine (fun _ e ->
      let o = handle_exn e (schedule_req ~algorithm:"mcpa" ptg) ~deadline:None in
      Alcotest.(check string) "label" "MCPA" o.Engine.algorithm;
      Alcotest.(check bool) "positive makespan" true (o.Engine.makespan > 0.);
      let expect_err req =
        match Engine.handle e req ~deadline:None with
        | Ok _ -> Alcotest.fail "expected an error"
        | Error _ -> ()
      in
      expect_err (schedule_req "not a graph");
      expect_err (schedule_req ~algorithm:"no-such-algorithm" ptg);
      expect_err { (schedule_req ptg) with Protocol.Request.platform = "no-such-platform" })

(* A deadline in the past still yields a complete, valid answer: the
   EA stops at the first generation boundary and reports best-so-far. *)
let test_engine_deadline_best_so_far () =
  let ptg = graph_string ~tasks:20 () in
  with_engine (fun _ e ->
      let full =
        handle_exn e (schedule_req ~algorithm:"emts10" ptg) ~deadline:None
      in
      let cut =
        handle_exn e
          (schedule_req ~algorithm:"emts10" ptg)
          ~deadline:(Some (Emts_obs.Clock.now () -. 1.))
      in
      Alcotest.(check bool) "deadline reported" true cut.Engine.deadline_hit;
      Alcotest.(check bool) "stopped early" true
        (cut.Engine.generations_done < full.Engine.generations_done);
      Alcotest.(check int) "alloc covers every task"
        (Array.length full.Engine.alloc)
        (Array.length cut.Engine.alloc);
      Alcotest.(check bool) "valid makespan" true
        (Float.is_finite cut.Engine.makespan && cut.Engine.makespan > 0.))

(* --- end-to-end over a real socket --- *)

(* Work stealing must not change what is computed, only which worker
   computes it: the same pipelined burst answers bit-identically with
   stealing on and off, and the stealing run exports its per-deque
   telemetry. *)
let test_server_steal_identity () =
  let burst = 10 in
  let ptgs = List.init 3 (fun i -> graph_string ~tasks:10 ~seed:(40 + i) ()) in
  let run_server ~steal =
    let dir = Filename.temp_file "emts_steal" ".d" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    let path = Filename.concat dir "emts.sock" in
    let stop = Atomic.make false in
    let server =
      Thread.create
        (fun () ->
          Server.run
            ~stop:(fun () -> Atomic.get stop)
            { Server.default with Server.socket = Some path; workers = 2;
              queue_capacity = 2 * burst; steal })
        ()
    in
    let deadline = Unix.gettimeofday () +. 10. in
    while (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline do
      Thread.delay 0.02
    done;
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stop true;
        Thread.join server;
        if Sys.file_exists path then Sys.remove path;
        Unix.rmdir dir)
      (fun () ->
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            (* Pipeline the whole burst before reading a single reply so
               the deques actually fill and the idle worker must steal. *)
            List.iteri
              (fun k ptg ->
                Protocol.write_frame fd
                  (Protocol.Request.to_string
                     (Protocol.Request.Schedule
                        {
                          id = J.Str (string_of_int k);
                          req = schedule_req ~seed:(100 + k) ptg;
                        })))
              (List.init burst (fun k -> List.nth ptgs (k mod 3)));
            let results = Hashtbl.create burst in
            for _ = 1 to burst do
              match
                Protocol.read_frame fd ~max_size:Protocol.default_max_frame
              with
              | Error e -> Alcotest.fail (Protocol.frame_error_to_string e)
              | Ok payload -> (
                match Protocol.Response.of_string payload with
                | Ok (Protocol.Response.Schedule_result r) ->
                  let k =
                    match r.Protocol.Response.id with
                    | J.Str s -> s
                    | _ -> Alcotest.fail "unexpected id"
                  in
                  Hashtbl.replace results k
                    (r.Protocol.Response.makespan, r.Protocol.Response.alloc)
                | Ok _ -> Alcotest.fail "expected a schedule result"
                | Error m -> Alcotest.fail ("bad response: " ^ m))
            done;
            let stats =
              Protocol.write_frame fd
                (Protocol.Request.to_string
                   (Protocol.Request.Stats { id = J.Null }));
              match
                Protocol.read_frame fd ~max_size:Protocol.default_max_frame
              with
              | Ok payload -> (
                match Protocol.Response.of_string payload with
                | Ok (Protocol.Response.Stats { stats; _ }) -> stats
                | _ -> Alcotest.fail "expected stats")
              | Error e -> Alcotest.fail (Protocol.frame_error_to_string e)
            in
            (results, stats)))
  in
  let steal_results, steal_stats = run_server ~steal:true in
  let fifo_results, _ = run_server ~steal:false in
  for k = 0 to burst - 1 do
    let key = string_of_int k in
    let m1, a1 = Hashtbl.find steal_results key in
    let m2, a2 = Hashtbl.find fifo_results key in
    Alcotest.(check (float 0.)) ("makespan " ^ key) m2 m1;
    Alcotest.(check (array int)) ("alloc " ^ key) a2 a1
  done;
  (* The stealing run exports its lane telemetry through stats. *)
  let gauges = J.member "gauges" steal_stats in
  List.iter
    (fun lane ->
      match Option.bind gauges (J.member ("serve.deque_depth." ^ lane)) with
      | Some _ -> ()
      | None -> Alcotest.fail ("missing serve.deque_depth." ^ lane))
    [ "0"; "1" ];
  (match
     Option.bind (J.member "counters" steal_stats)
       (J.member "serve.steals_total")
   with
  | Some v -> (
    match J.to_int v with
    | Ok n -> Alcotest.(check bool) "steals counted" true (n >= 0)
    | Error m -> Alcotest.fail m)
  | None -> Alcotest.fail "missing serve.steals_total")

let test_server_end_to_end () =
  let dir = Filename.temp_file "emts_serve" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "emts.sock" in
  let stop = Atomic.make false in
  let server =
    Thread.create
      (fun () ->
        Server.run
          ~stop:(fun () -> Atomic.get stop)
          { Server.default with Server.socket = Some path; workers = 2 })
      ()
  in
  let deadline = Unix.gettimeofday () +. 10. in
  while (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline do
    Thread.delay 0.02
  done;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join server;
      if Sys.file_exists path then Sys.remove path;
      Unix.rmdir dir)
    (fun () ->
      let connect () =
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      in
      let roundtrip fd req =
        Protocol.write_frame fd (Protocol.Request.to_string req);
        match Protocol.read_frame fd ~max_size:Protocol.default_max_frame with
        | Ok payload -> (
          match Protocol.Response.of_string payload with
          | Ok r -> r
          | Error m -> Alcotest.fail ("bad response: " ^ m))
        | Error e -> Alcotest.fail (Protocol.frame_error_to_string e)
      in
      (* A connection poisoned by a malformed frame is closed... *)
      let bad = connect () in
      let junk = "GARBAGEGARBAGE" in
      let _ = Unix.write_substring bad junk 0 (String.length junk) in
      (match Protocol.read_frame bad ~max_size:Protocol.default_max_frame with
      | Ok payload -> (
        match Protocol.Response.of_string payload with
        | Ok (Protocol.Response.Error { code; _ }) ->
          Alcotest.(check string) "malformed code"
            Protocol.Error_code.malformed_frame code
        | _ -> Alcotest.fail "expected an error response")
      | Error _ -> Alcotest.fail "expected an error response before close");
      Unix.close bad;
      (* ... while a fresh connection on the same server still works,
         and a bad payload in a sound frame keeps its connection. *)
      let fd = connect () in
      (match roundtrip fd (Protocol.Request.Ping { id = J.Str "t" }) with
      | Protocol.Response.Pong { server; _ } ->
        Alcotest.(check string) "server id" Server.server_id server
      | _ -> Alcotest.fail "expected pong");
      Protocol.write_frame fd "this is not json";
      (match Protocol.read_frame fd ~max_size:Protocol.default_max_frame with
      | Ok payload -> (
        match Protocol.Response.of_string payload with
        | Ok (Protocol.Response.Error { code; _ }) ->
          Alcotest.(check string) "bad payload code"
            Protocol.Error_code.bad_request code
        | _ -> Alcotest.fail "expected an error response")
      | Error e -> Alcotest.fail (Protocol.frame_error_to_string e));
      let ptg = graph_string () in
      (match
         roundtrip fd
           (Protocol.Request.Schedule
              { id = J.Str "s1"; req = schedule_req ptg })
       with
      | Protocol.Response.Schedule_result r ->
        Alcotest.(check string) "id echoed" "s1"
          (match r.Protocol.Response.id with J.Str s -> s | _ -> "?");
        Alcotest.(check int) "alloc length" 12
          (Array.length r.Protocol.Response.alloc)
      | _ -> Alcotest.fail "expected a schedule result");
      (match roundtrip fd (Protocol.Request.Stats { id = J.Null }) with
      | Protocol.Response.Stats { stats; _ } -> (
        match J.member "counters" stats with
        | Some (J.Obj _) -> ()
        | _ -> Alcotest.fail "stats missing counters")
      | _ -> Alcotest.fail "expected stats");
      (* The metrics verb answers with a complete OpenMetrics text
         exposition on the same connection. *)
      (match roundtrip fd (Protocol.Request.Metrics { id = J.Str "m" }) with
      | Protocol.Response.Metrics { body; _ } ->
        let contains ~sub s =
          let n = String.length sub in
          let rec go i =
            i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "terminated" true (contains ~sub:"# EOF" body);
        Alcotest.(check bool) "has requests counter" true
          (contains ~sub:"emts_serve_requests_total" body)
      | _ -> Alcotest.fail "expected metrics");
      (* A client-supplied trace_id is echoed even with tracing off. *)
      (match
         roundtrip fd
           (Protocol.Request.Schedule
              { id = J.Str "s2"; req = schedule_req ~trace_id:"tdeadbeef" ptg })
       with
      | Protocol.Response.Schedule_result r ->
        Alcotest.(check (option string)) "trace_id echoed"
          (Some "tdeadbeef") r.Protocol.Response.trace_id
      | _ -> Alcotest.fail "expected a schedule result");
      Unix.close fd)

(* --- self-healing under injected faults ------------------------------

   One server instance, one connection, three storms in sequence:

   1. a hung solve with an already-expired deadline: the watchdog must
      answer [deadline_exceeded] long before the solve wakes up, and
      the worker's late result must be dropped (probed with a ping on
      the same connection — a stray second reply would desync framing);
   2. a worker-domain exception: one typed [internal] reply, the
      internal-error and respawn counters move in lockstep, and the
      respawned lane serves the next request;
   3. a fault in flight at drain start: stop is raised while the worker
      is sleeping inside an injected delay — health on the existing
      connection must flip to draining, the admitted job must still get
      its result, and [Server.run] must return [Ok]. *)

let counter name =
  Option.value ~default:0 (Emts_obs.Metrics.find_counter name)

let with_fault_plan events f =
  Fun.protect
    ~finally:(fun () -> Emts_fault.disarm ())
    (fun () ->
      Emts_fault.arm { Emts_fault.Plan.seed = 0; events };
      f ())

let test_server_self_healing () =
  let dir = Filename.temp_file "emts_serve_chaos" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "emts.sock" in
  let stop = Atomic.make false in
  let outcome = ref (Ok ()) in
  let server =
    Thread.create
      (fun () ->
        outcome :=
          Server.run
            ~stop:(fun () -> Atomic.get stop)
            {
              Server.default with
              Server.socket = Some path;
              workers = 1;
              queue_capacity = 16;
              watchdog_grace = 0.1;
            })
      ()
  in
  let deadline = Unix.gettimeofday () +. 10. in
  while (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline do
    Thread.delay 0.02
  done;
  Fun.protect
    ~finally:(fun () ->
      Emts_fault.disarm ();
      Atomic.set stop true;
      Thread.join server;
      if Sys.file_exists path then Sys.remove path;
      Unix.rmdir dir)
    (fun () ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let send req = Protocol.write_frame fd (Protocol.Request.to_string req) in
      let read_resp () =
        match Protocol.read_frame fd ~max_size:Protocol.default_max_frame with
        | Ok payload -> (
          match Protocol.Response.of_string payload with
          | Ok r -> r
          | Error m -> Alcotest.fail ("bad response: " ^ m))
        | Error e -> Alcotest.fail (Protocol.frame_error_to_string e)
      in
      let roundtrip req = send req; read_resp () in
      (* One distinct graph per storm: the engine caches completed
         solves, and a cache hit would skip evaluation entirely — the
         injected fault must actually be reached. *)
      let ptg_hung = graph_string ~seed:101 () in
      let ptg_boom = graph_string ~seed:102 () in
      let ptg_after = graph_string ~seed:103 () in
      let ptg_drain = graph_string ~seed:104 () in
      (* A serving daemon reports live and ready. *)
      (match roundtrip (Protocol.Request.Health { id = J.Str "h0" }) with
      | Protocol.Response.Health { live; ready; draining; _ } ->
        Alcotest.(check bool) "live" true live;
        Alcotest.(check bool) "ready" true ready;
        Alcotest.(check bool) "not draining" false draining
      | _ -> Alcotest.fail "expected a health response");
      (* 1. Hung solve, deadline already expired when the watchdog
         sweeps: the solve sleeps 0.8s but the typed reply must arrive
         within the grace window. *)
      let watchdog0 = counter "serve.watchdog_fired_total" in
      with_fault_plan
        [ { Emts_fault.Plan.site = Emts_fault.Site.Solve; nth = 0;
            action = Emts_fault.Delay 0.8 } ]
        (fun () ->
          let t0 = Unix.gettimeofday () in
          (match
             roundtrip
               (Protocol.Request.Schedule
                  { id = J.Str "hung";
                    req = schedule_req ~deadline_s:0.001 ptg_hung })
           with
          | Protocol.Response.Error { code; retry_after_ms; _ } ->
            Alcotest.(check string) "watchdog answers deadline_exceeded"
              Protocol.Error_code.deadline_exceeded code;
            Alcotest.(check (option int)) "no backoff hint" None retry_after_ms
          | _ -> Alcotest.fail "expected a watchdog error reply");
          Alcotest.(check bool) "reply beat the hung solve" true
            (Unix.gettimeofday () -. t0 < 0.75);
          Alcotest.(check int) "watchdog counted it" (watchdog0 + 1)
            (counter "serve.watchdog_fired_total");
          (* The worker's late result must lose the reply-once race:
             the next frame on this connection is the pong, nothing
             else. *)
          (match roundtrip (Protocol.Request.Ping { id = J.Str "p1" }) with
          | Protocol.Response.Pong _ -> ()
          | _ -> Alcotest.fail "late worker result leaked onto the wire");
          (* The single worker is still asleep inside the injected
             delay; queue a sentinel behind the hung job and wait for
             its result so the next storm starts with an idle lane (and
             the hung job's late result is confirmed dropped, not
             merely late). *)
          match
            roundtrip
              (Protocol.Request.Schedule
                 { id = J.Str "sentinel";
                   req = schedule_req (graph_string ~seed:105 ()) })
          with
          | Protocol.Response.Schedule_result _ -> ()
          | _ -> Alcotest.fail "expected the sentinel result");
      (* 2. Worker-domain exception: one typed internal reply, counters
         move in lockstep, lane respawns and keeps serving. *)
      let internal0 = counter "serve.internal_errors_total" in
      let respawns0 = counter "serve.worker_respawns_total" in
      with_fault_plan
        [ { Emts_fault.Plan.site = Emts_fault.Site.Worker_eval; nth = 0;
            action = Emts_fault.Raise } ]
        (fun () ->
          match
            roundtrip
              (Protocol.Request.Schedule
                 { id = J.Str "boom"; req = schedule_req ptg_boom })
          with
          | Protocol.Response.Error { code; _ } ->
            Alcotest.(check string) "typed internal error"
              Protocol.Error_code.internal code
          | _ -> Alcotest.fail "expected an internal error reply");
      Alcotest.(check int) "internal errors counted" (internal0 + 1)
        (counter "serve.internal_errors_total");
      (* The respawn is counted after the reply is on the wire. *)
      let limit = Unix.gettimeofday () +. 5. in
      while
        counter "serve.worker_respawns_total" < respawns0 + 1
        && Unix.gettimeofday () < limit
      do
        Thread.delay 0.02
      done;
      Alcotest.(check int) "lane respawned exactly once" (respawns0 + 1)
        (counter "serve.worker_respawns_total");
      (match
         roundtrip
           (Protocol.Request.Schedule
              { id = J.Str "after"; req = schedule_req ptg_after })
       with
      | Protocol.Response.Schedule_result r ->
        Alcotest.(check int) "respawned lane solves" 12
          (Array.length r.Protocol.Response.alloc)
      | _ -> Alcotest.fail "expected a result from the respawned lane");
      (* 3. Fault in flight at drain start: the worker sleeps inside an
         injected delay while stop is raised.  An existing connection
         must see health flip to draining, and the admitted job must
         still be answered before the drain completes. *)
      with_fault_plan
        [ { Emts_fault.Plan.site = Emts_fault.Site.Solve; nth = 0;
            action = Emts_fault.Delay 0.8 } ]
        (fun () ->
          send
            (Protocol.Request.Schedule
               { id = J.Str "drainjob"; req = schedule_req ptg_drain });
          Thread.delay 0.1;  (* let the worker enter the injected sleep *)
          Atomic.set stop true;
          let got_draining = ref false in
          let got_result = ref false in
          let limit = Unix.gettimeofday () +. 8. in
          while
            (not (!got_draining && !got_result))
            && Unix.gettimeofday () < limit
          do
            if not !got_draining then begin
              Thread.delay 0.05;
              send (Protocol.Request.Health { id = J.Str "hd" })
            end;
            match read_resp () with
            | Protocol.Response.Health { draining = true; ready; _ } ->
              Alcotest.(check bool) "draining is not ready" false ready;
              got_draining := true
            | Protocol.Response.Health { draining = false; _ } -> ()
            | Protocol.Response.Schedule_result r ->
              Alcotest.(check string) "drain answered the admitted job"
                "drainjob"
                (match r.Protocol.Response.id with J.Str s -> s | _ -> "?");
              got_result := true
            | _ -> Alcotest.fail "unexpected reply during drain"
          done;
          Alcotest.(check bool) "health flipped to draining" true !got_draining;
          Alcotest.(check bool) "admitted job answered through drain" true
            !got_result);
      Unix.close fd;
      Thread.join server;
      match !outcome with
      | Ok () -> ()
      | Error m -> Alcotest.fail ("server exited with an error: " ^ m))

(* --- online session over the wire, through a drain ------------------

   One daemon, one connection: submit a DAG into a named session,
   advance part-way, then raise stop mid-flight.  The draining daemon
   must keep answering the admitted session — advance still runs the
   admitted workload to completion — while new submits are refused
   with the typed [draining] error. *)

let test_server_online_drain () =
  let dir = Filename.temp_file "emts_serve_online" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "emts.sock" in
  let stop = Atomic.make false in
  let outcome = ref (Ok ()) in
  let server =
    Thread.create
      (fun () ->
        outcome :=
          Server.run
            ~stop:(fun () -> Atomic.get stop)
            { Server.default with Server.socket = Some path; workers = 1 })
      ()
  in
  let deadline = Unix.gettimeofday () +. 10. in
  while (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline do
    Thread.delay 0.02
  done;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join server;
      if Sys.file_exists path then Sys.remove path;
      Unix.rmdir dir)
    (fun () ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let roundtrip req =
        Protocol.write_frame fd (Protocol.Request.to_string req);
        match Protocol.read_frame fd ~max_size:Protocol.default_max_frame with
        | Ok payload -> (
          match Protocol.Response.of_string payload with
          | Ok r -> r
          | Error m -> Alcotest.fail ("bad response: " ^ m))
        | Error e -> Alcotest.fail (Protocol.frame_error_to_string e)
      in
      let ptg = graph_string () in
      let submit ~id ~session =
        Protocol.Request.Submit
          {
            id = J.Str id;
            session;
            ptg;
            at = 0.;
            platform = "grelon";
            model = "amdahl";
            algorithm = "emts1";
            seed = 7;
            islands = 1;
            migration_interval = 5;
            migration_count = 1;
          }
      in
      (match roundtrip (submit ~id:"sub1" ~session:"drainy") with
      | Protocol.Response.Submit_result { session; dag; tasks; replans; _ } ->
        Alcotest.(check string) "session echoed" "drainy" session;
        Alcotest.(check int) "first dag index" 0 dag;
        Alcotest.(check int) "admitted task count" 12 tasks;
        Alcotest.(check bool) "planned at least once" true (replans >= 1)
      | _ -> Alcotest.fail "expected a submit result");
      (* an unknown session is a typed bad_request, not a crash *)
      (match
         roundtrip
           (Protocol.Request.Advance
              { id = J.Str "ghost"; session = "ghost"; to_ = None })
       with
      | Protocol.Response.Error { code; _ } ->
        Alcotest.(check string) "unknown session refused"
          Protocol.Error_code.bad_request code
      | _ -> Alcotest.fail "expected an error for an unknown session");
      (* an advance to t=0 cannot have finished the workload; it also
         hands back the clairvoyant bound used to pick a mid-flight
         drain point *)
      let bound =
        match
          roundtrip
            (Protocol.Request.Advance
               { id = J.Str "a0"; session = "drainy"; to_ = Some 0. })
        with
        | Protocol.Response.Advance_result { complete; bound; _ } ->
          Alcotest.(check bool) "not complete at t=0" false complete;
          bound
        | _ -> Alcotest.fail "expected an advance result"
      in
      Alcotest.(check bool) "bound is positive and finite" true
        (Float.is_finite bound && bound > 0.);
      (match
         roundtrip
           (Protocol.Request.Advance
              { id = J.Str "a1"; session = "drainy";
                to_ = Some (0.5 *. bound) })
       with
      | Protocol.Response.Advance_result { now; _ } ->
        Alcotest.(check bool) "clock moved" true (now > 0.)
      | _ -> Alcotest.fail "expected an advance result");
      (* raise stop mid-flight and wait for health to flip *)
      Atomic.set stop true;
      let limit = Unix.gettimeofday () +. 8. in
      let draining = ref false in
      while (not !draining) && Unix.gettimeofday () < limit do
        match roundtrip (Protocol.Request.Health { id = J.Str "hd" }) with
        | Protocol.Response.Health { draining = d; _ } ->
          if d then draining := true else Thread.delay 0.05
        | _ -> Alcotest.fail "expected a health response"
      done;
      Alcotest.(check bool) "health flipped to draining" true !draining;
      (* a draining daemon refuses new work with the typed code... *)
      (match roundtrip (submit ~id:"sub2" ~session:"latecomer") with
      | Protocol.Response.Error { code; _ } ->
        Alcotest.(check string) "submit refused while draining"
          Protocol.Error_code.draining code
      | _ -> Alcotest.fail "expected a draining error");
      (* ... while the admitted session still runs to completion *)
      (match
         roundtrip
           (Protocol.Request.Advance
              { id = J.Str "a2"; session = "drainy"; to_ = None })
       with
      | Protocol.Response.Advance_result { complete; makespan; bound; _ } ->
        Alcotest.(check bool) "admitted work finished through drain" true
          complete;
        (match makespan with
        | Some m ->
          Alcotest.(check bool) "makespan >= clairvoyant bound" true
            (m >= bound -. (1e-9 *. Float.max 1. bound))
        | None -> Alcotest.fail "complete advance must report a makespan")
      | _ -> Alcotest.fail "expected an advance result");
      Unix.close fd;
      Thread.join server;
      match !outcome with
      | Ok () -> ()
      | Error m -> Alcotest.fail ("server exited with an error: " ^ m))

(* --- deque --- *)

module Deque = Emts_serve.Deque

let test_deque_ends () =
  let d = Deque.create () in
  Alcotest.(check bool) "fresh empty" true (Deque.is_empty d);
  Alcotest.(check (option int)) "pop_back empty" None (Deque.pop_back d);
  Alcotest.(check (option int)) "pop_front empty" None (Deque.pop_front d);
  List.iter (Deque.push_back d) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "length" 4 (Deque.length d);
  (* Owner end is LIFO... *)
  Alcotest.(check (option int)) "owner pops newest" (Some 4)
    (Deque.pop_back d);
  (* ...thief end is FIFO. *)
  Alcotest.(check (option int)) "thief steals oldest" (Some 1)
    (Deque.pop_front d);
  Alcotest.(check (option int)) "then next-oldest" (Some 2)
    (Deque.pop_front d);
  Alcotest.(check (option int)) "owner again" (Some 3) (Deque.pop_back d);
  Alcotest.(check bool) "drained" true (Deque.is_empty d)

let test_deque_growth () =
  let d = Deque.create () in
  (* Interleave pushes and front-pops so the ring wraps while growing:
     the resize must preserve front-to-back order across the seam. *)
  for i = 1 to 5 do Deque.push_back d i done;
  Alcotest.(check (option int)) "wrap pop" (Some 1) (Deque.pop_front d);
  Alcotest.(check (option int)) "wrap pop" (Some 2) (Deque.pop_front d);
  for i = 6 to 40 do Deque.push_back d i done;
  let got = ref [] in
  let rec drain () =
    match Deque.pop_front d with
    | Some x -> got := x :: !got; drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "order preserved through growth"
    (List.init 38 (fun i -> i + 3))
    (List.rev !got)

(* --- endpoint grammar --- *)

module Endpoint = Emts_serve.Endpoint

let endpoint_t =
  Alcotest.testable
    (fun fmt e -> Format.pp_print_string fmt (Endpoint.to_string e))
    ( = )

let test_endpoint_parse () =
  let ok = Alcotest.(result endpoint_t string) in
  let check spec expected =
    Alcotest.check ok spec (Ok expected) (Endpoint.parse ~flag:"--connect" spec)
  in
  check "127.0.0.1:7464" (Endpoint.Tcp ("127.0.0.1", 7464));
  check "host.example:1" (Endpoint.Tcp ("host.example", 1));
  (* The port splits on the last colon, so colon-bearing hosts parse. *)
  check "::1:7464" (Endpoint.Tcp ("::1", 7464));
  check "unix:/tmp/emts.sock" (Endpoint.Unix_socket "/tmp/emts.sock");
  (* The unix: prefix wins even for paths with colons in them. *)
  check "unix:relative:name" (Endpoint.Unix_socket "relative:name");
  check "/tmp/emts.sock" (Endpoint.Unix_socket "/tmp/emts.sock");
  List.iter
    (fun spec ->
      let expected =
        Error (Printf.sprintf "--connect %S: expected HOST:PORT" spec)
      in
      Alcotest.check ok spec expected (Endpoint.parse ~flag:"--connect" spec))
    [ "nonsense"; ":7464"; "host:"; "host:0"; "host:65536"; "host:x" ]

let test_endpoint_roundtrip_and_hostport () =
  List.iter
    (fun ep ->
      Alcotest.check
        Alcotest.(result endpoint_t string)
        "to_string round-trips" (Ok ep)
        (Endpoint.parse ~flag:"t" (Endpoint.to_string ep)))
    [
      Endpoint.Tcp ("127.0.0.1", 7464);
      Endpoint.Unix_socket "/tmp/emts.sock";
      Endpoint.Unix_socket "relative:name";
    ];
  (* parse_hostport is the --listen/--metrics-listen grammar: no unix
     sockets, same pinned error text. *)
  Alcotest.(check (result (pair string int) string))
    "hostport ok"
    (Ok ("0.0.0.0", 9100))
    (Endpoint.parse_hostport ~flag:"--listen" "0.0.0.0:9100");
  Alcotest.(check (result (pair string int) string))
    "hostport error is pinned"
    (Error "--listen \"nonsense\": expected HOST:PORT")
    (Endpoint.parse_hostport ~flag:"--listen" "nonsense")

let test_endpoint_connect_listen () =
  let path =
    Printf.sprintf "/tmp/emts-test-ep-%d.sock" (Unix.getpid ())
  in
  let ep = Endpoint.Unix_socket path in
  let lfd = Endpoint.listen_fd ep in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      let cfd = Endpoint.connect_fd ep in
      let afd, _ = Unix.accept lfd in
      let _ = Unix.write_substring cfd "hi" 0 2 in
      let buf = Bytes.create 2 in
      let n = Unix.read afd buf 0 2 in
      Alcotest.(check string) "bytes flow" "hi" (Bytes.sub_string buf 0 n);
      Unix.close cfd;
      Unix.close afd;
      (* Rebinding unlinks the stale path instead of failing. *)
      let lfd2 = Endpoint.listen_fd ep in
      Unix.close lfd2)

let () =
  Alcotest.run "serve"
    [
      ( "deque",
        [
          Alcotest.test_case "owner LIFO, thief FIFO" `Quick test_deque_ends;
          Alcotest.test_case "growth preserves order" `Quick
            test_deque_growth;
        ] );
      ( "endpoint",
        [
          Alcotest.test_case "parse grammar" `Quick test_endpoint_parse;
          Alcotest.test_case "round trip and hostport" `Quick
            test_endpoint_roundtrip_and_hostport;
          Alcotest.test_case "listen and connect" `Quick
            test_endpoint_connect_listen;
        ] );
      ( "framing",
        [
          Alcotest.test_case "round trip" `Quick test_frame_round_trip;
          Alcotest.test_case "closed / truncated" `Quick
            test_frame_closed_and_truncated;
          Alcotest.test_case "bad magic / too large" `Quick
            test_frame_bad_magic_and_too_large;
        ] );
      ( "messages",
        [
          Alcotest.test_case "request round trip" `Quick
            test_request_round_trip;
          Alcotest.test_case "request defaults and errors" `Quick
            test_request_defaults_and_errors;
          Alcotest.test_case "response round trip" `Quick
            test_response_round_trip;
        ] );
      ( "engine",
        [
          Alcotest.test_case "determinism across pool widths" `Quick
            test_engine_determinism;
          Alcotest.test_case "repeat request, shared cache" `Quick
            test_engine_repeat_hits_cache;
          Alcotest.test_case "cache instances bounded" `Quick
            test_engine_cache_instances_bounded;
          Alcotest.test_case "heuristics and request errors" `Quick
            test_engine_heuristic_and_errors;
          Alcotest.test_case "deadline returns best-so-far" `Quick
            test_engine_deadline_best_so_far;
        ] );
      ( "server",
        [
          Alcotest.test_case "end to end" `Quick test_server_end_to_end;
          Alcotest.test_case "steal/FIFO identity" `Quick
            test_server_steal_identity;
          Alcotest.test_case "self-healing under faults" `Quick
            test_server_self_healing;
          Alcotest.test_case "online session through a drain" `Quick
            test_server_online_drain;
        ] );
    ]
